// Package server implements the Foresight demo web UI (paper Figure
// 1): a JSON API over the query engine plus a self-contained HTML
// page that renders insight carousels, supports focusing insights to
// update recommendations, and shows per-class overview heat maps.
//
// The server is fully instrumented (internal/obs): every route
// records per-route request counts, latency histograms and response
// bytes; every request carries an X-Request-ID and a trace whose
// spans (parse → enumerate → score → rank → render) land in a ring
// buffer served at /api/debug/traces; /metrics exposes the whole
// registry in Prometheus text format.
//
// The serving path is bounded end to end (DESIGN.md §6e): every API
// request runs under an optional deadline whose expiry surfaces as
// 504 (the engine honors the context, so the workers actually stop),
// a bounded-concurrency gate sheds excess load with 503 instead of
// queueing without limit, handler panics are recovered into 500s with
// the stack in the structured log, and POST bodies are capped. The
// cancellation/timeout/shed/panic counters land in /metrics next to
// everything else.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"foresight/internal/core"
	"foresight/internal/durable"
	"foresight/internal/obs"
	"foresight/internal/obs/telemetry"
	"foresight/internal/query"
	"foresight/internal/sketch"
	"foresight/internal/viz"
)

// maxRequestBody caps POST bodies (/api/focus, /api/state); larger
// requests are rejected with 413 before decoding.
const maxRequestBody = 1 << 20

// statusClientClosedRequest is the nginx-convention status recorded
// when the client disconnected before the response was written; it
// never reaches a live client but keeps abandoned requests visible in
// the per-status metrics.
const statusClientClosedRequest = 499

// Options configures the server's observability stack. The zero value
// is fully functional: a private registry, a 64-trace ring buffer
// keeping every trace, and no request logging.
type Options struct {
	// Registry receives the server's and engine's metrics; nil creates
	// a private registry (still served at /metrics).
	Registry *obs.Registry
	// LogWriter receives one structured JSON line per request; nil
	// disables request logging.
	LogWriter io.Writer
	// TraceCapacity bounds the /api/debug/traces ring buffer (0 → 64).
	TraceCapacity int
	// SlowTraceThreshold keeps only traces at least this long (0 keeps
	// every trace).
	SlowTraceThreshold time.Duration
	// Version is reported by /api/stats ("" → "dev").
	Version string
	// RequestTimeout bounds each API request's context; the engine
	// returns promptly on expiry and the response is a 504 JSON error.
	// 0 disables the deadline.
	RequestTimeout time.Duration
	// MaxInflight bounds concurrently served API requests; excess
	// requests are shed immediately with a 503 JSON error instead of
	// queueing without bound. 0 disables the gate. The index page and
	// /metrics are never gated, so the UI loads and observability
	// survives saturation.
	MaxInflight int
	// IngestQueue bounds the /api/ingest batch queue (ingest.go);
	// excess batches are shed with 503. 0 → 32.
	IngestQueue int
	// QueryLogSample is the fraction of engine queries logged as
	// structured JSON lines through LogWriter (0 disables, 1 logs every
	// query, 0.01 logs every 100th). Independent of the per-request
	// HTTP log: a query line carries scoring telemetry (candidates,
	// pruned, filtered, emitted, top-k margin), not HTTP fields.
	QueryLogSample float64
	// Telemetry sizes the insight-telemetry store served at
	// /api/debug/insights; the zero value picks the defaults.
	Telemetry telemetry.Config
	// StartUnready starts the server not ready: /readyz answers 503 and
	// ingest is rejected with 503 + Retry-After until SetReady is
	// called. Used while WAL recovery replays into the engine — queries
	// already serve (against the pre-replay snapshot), but accepting
	// writes before the log is open would break the durability
	// contract.
	StartUnready bool
	// Durable, when set, contributes the "durable" section of
	// /api/stats (WAL/checkpoint/recovery counters).
	Durable DurableStats
}

// DurableStats is the slice of the durability manager
// (internal/durable.Manager) the server reads for /api/stats.
type DurableStats interface{ Stats() durable.Stats }

// Server wires one dataset, one engine and one exploration session
// into an http.Handler. A demo server holds a single shared session,
// like the paper's single-analyst demo.
//
// The engine is safe for concurrent use on its own; mu only protects
// the shared session. Read-only endpoints (carousels, query,
// overview, neighborhood, render, stats, state GET) take the read
// lock or none at all, so they serve in parallel; only focus/unfocus
// and state restore serialize behind the write lock.
type Server struct {
	engine  *query.Engine
	session *query.Session
	mu      sync.RWMutex
	mux     *http.ServeMux

	registry *obs.Registry
	httpObs  *obs.HTTP
	traces   *obs.TraceLog
	telem    *telemetry.Insights
	start    time.Time
	version  string

	// ready gates ingest and /readyz; it starts false under
	// Options.StartUnready and flips once via SetReady when recovery
	// replay completes. durable is the optional stats source.
	ready   atomic.Bool
	durable DurableStats

	// Serving-path safety rails (§6e): the per-request deadline, the
	// bounded-concurrency gate, and their visibility counters.
	requestTimeout time.Duration
	gate           chan struct{} // nil = unlimited
	panics         *obs.Counter
	timeouts       *obs.Counter
	sheds          *obs.Counter

	// Live-ingest queue and worker (ingest.go). Close stops the worker.
	ingestQ         chan *ingestJob
	ingestStop      chan struct{}
	ingestWG        sync.WaitGroup
	closeOnce       sync.Once
	ingestRequests  *obs.Counter
	ingestRejected  *obs.Counter
	ingestRows      *obs.Counter
	ingestBatches   *obs.Counter
	ingestCoalesced *obs.Counter
	ingestSeconds   *obs.Histogram
}

// New returns a Server over the engine with carousel length k. An
// optional Options value configures the observability stack; the
// engine is instrumented into the server's registry either way.
func New(engine *query.Engine, k int, approx bool, opts ...Options) *Server {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	reg := o.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	version := o.Version
	if version == "" {
		version = "dev"
	}
	s := &Server{
		engine:         engine,
		session:        query.NewSession(engine, k, approx),
		mux:            http.NewServeMux(),
		registry:       reg,
		traces:         obs.NewTraceLog(o.TraceCapacity, o.SlowTraceThreshold),
		start:          time.Now(),
		version:        version,
		requestTimeout: o.RequestTimeout,
		durable:        o.Durable,
	}
	s.ready.Store(!o.StartUnready)
	if o.MaxInflight > 0 {
		s.gate = make(chan struct{}, o.MaxInflight)
	}
	s.panics = reg.Counter("foresight_http_panics_total",
		"Handler panics recovered by the middleware (returned as 500).")
	s.timeouts = reg.Counter("foresight_http_timeouts_total",
		"Requests that exceeded the per-request deadline (returned as 504).")
	s.sheds = reg.Counter("foresight_http_sheds_total",
		"Requests shed by the max-inflight gate (returned as 503).")
	engine.Instrument(reg)
	// Profile build/merge phase timings (sketch layer's process-wide
	// observer) land in the same registry, so sharded ingest rebuilds
	// show their shard/merge breakdown at /metrics. The registry
	// dedupes by name: a binary that registered the histogram earlier
	// (foresightd does, to catch startup preprocessing) shares the
	// collector with us.
	buildSeconds := reg.HistogramVec("foresight_profile_build_seconds",
		"Profile build/merge phase latency in seconds, by sketch-layer phase.", nil, "phase")
	sketch.SetTimingObserver(func(op string, d time.Duration) {
		buildSeconds.With(op).Observe(d.Seconds())
	})
	reg.GaugeFunc("foresight_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })
	reg.GaugeFunc("go_goroutines", "Number of goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("go_heap_alloc_bytes", "Bytes of allocated heap objects.",
		func() float64 {
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			return float64(m.HeapAlloc)
		})
	s.httpObs = &obs.HTTP{
		Metrics: obs.NewHTTPMetrics(reg, "foresight_http"),
		Log:     obs.NewLogger(o.LogWriter),
		Traces:  s.traces,
	}
	// Insight telemetry: Foresight observing itself with its own
	// sketches (obs/telemetry). The store is bounded and always on —
	// recording costs one stripe lock after scoring — and is served at
	// /api/debug/insights plus the foresight_insight_* metric families.
	// The sampled query log shares the request logger's writer and
	// mutex, so the two JSON streams interleave cleanly.
	s.telem = telemetry.New(o.Telemetry)
	s.telem.Instrument(reg)
	s.telem.SetQueryLog(s.httpObs.Log, o.QueryLogSample)
	engine.SetInsightTelemetry(s.telem)
	obs.SetBuildInfo(reg, version)

	s.handle("/", s.handleIndex, http.MethodGet)
	// Liveness and readiness are never gated or deadlined (non-/api/
	// paths): an orchestrator must be able to probe a saturated server.
	s.handle("/healthz", s.handleHealthz, http.MethodGet)
	s.handle("/readyz", s.handleReadyz, http.MethodGet)
	s.handle("/api/dataset", s.handleDataset, http.MethodGet)
	s.handle("/api/classes", s.handleClasses, http.MethodGet)
	s.handle("/api/carousels", s.handleCarousels, http.MethodGet)
	s.handle("/api/query", s.handleQuery, http.MethodGet)
	s.handle("/api/overview", s.handleOverview, http.MethodGet)
	s.handle("/api/render", s.handleRender, http.MethodGet)
	s.handle("/api/neighborhood", s.handleNeighborhood, http.MethodGet)
	s.startIngest(o.IngestQueue)
	s.handle("/api/ingest", s.handleIngest, http.MethodPost)
	s.handle("/api/focus", s.handleFocus, http.MethodPost)
	s.handle("/api/unfocus", s.handleUnfocus, http.MethodPost)
	s.handle("/api/state", s.handleState, http.MethodGet, http.MethodPost)
	s.handle("/api/stats", s.handleStats, http.MethodGet)
	s.handle("/api/debug/traces", s.handleDebugTraces, http.MethodGet)
	s.handle("/api/debug/insights", s.handleDebugInsights, http.MethodGet)
	s.mux.Handle("/metrics", s.httpObs.Wrap("/metrics", s.recoverPanics("/metrics", reg.Handler())))
	return s
}

// handle registers an instrumented handler for pattern: the obs
// middleware assigns the request ID, trace, per-route metrics and log
// line; inside it, panic recovery converts a crashing handler into a
// 500; API routes additionally pass the load-shedding gate and run
// under the per-request deadline; innermost, the guard rejects
// methods outside allowed with a consistent 405 JSON error naming the
// allowed set.
func (s *Server) handle(pattern string, h http.HandlerFunc, allowed ...string) {
	var next http.Handler = h
	if len(allowed) > 0 {
		next = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			for _, m := range allowed {
				if r.Method == m || (m == http.MethodGet && r.Method == http.MethodHead) {
					h(w, r)
					return
				}
			}
			w.Header().Set("Allow", strings.Join(allowed, ", "))
			s.jsonError(w, r, http.StatusMethodNotAllowed,
				fmt.Errorf("method %s not allowed (allow: %s)", r.Method, strings.Join(allowed, ", ")))
		})
	}
	if strings.HasPrefix(pattern, "/api/") {
		next = s.withDeadline(next)
		next = s.withGate(next)
	}
	s.mux.Handle(pattern, s.httpObs.Wrap(pattern, s.recoverPanics(pattern, next)))
}

// trackingWriter remembers whether anything was written so the panic
// recovery knows if a 500 body can still be sent.
type trackingWriter struct {
	http.ResponseWriter
	wrote bool
}

func (w *trackingWriter) WriteHeader(code int) {
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *trackingWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer when it supports streaming.
func (w *trackingWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// recoverPanics isolates handler panics: the process keeps serving,
// the client gets a 500 JSON error (when nothing was written yet), the
// stack lands in the structured log, and foresight_http_panics_total
// increments. http.ErrAbortHandler is re-raised — it is net/http's
// sanctioned way to abort a response, not a crash.
func (s *Server) recoverPanics(route string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tw := &trackingWriter{ResponseWriter: w}
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if err, ok := rec.(error); ok && errors.Is(err, http.ErrAbortHandler) {
				panic(rec)
			}
			s.panics.Inc()
			s.httpObs.Log.Log("panic", map[string]interface{}{
				"request_id": obs.RequestIDFrom(r.Context()),
				"route":      route,
				"method":     r.Method,
				"panic":      fmt.Sprint(rec),
				"stack":      string(debug.Stack()),
			})
			if !tw.wrote {
				s.jsonError(tw, r, http.StatusInternalServerError,
					fmt.Errorf("internal error serving %s (panic recovered; see server log)", route))
			}
		}()
		next.ServeHTTP(tw, r)
	})
}

// withGate sheds load once MaxInflight API requests are already being
// served: the request is rejected immediately with 503 rather than
// queueing behind work the server cannot keep up with.
func (s *Server) withGate(next http.Handler) http.Handler {
	if s.gate == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.gate <- struct{}{}:
			defer func() { <-s.gate }()
			next.ServeHTTP(w, r)
		default:
			s.sheds.Inc()
			w.Header().Set("Retry-After", "1")
			s.jsonError(w, r, http.StatusServiceUnavailable,
				fmt.Errorf("server saturated (%d requests in flight); retry shortly", cap(s.gate)))
		}
	})
}

// withDeadline bounds the request context. The handlers pass this
// context into the engine, which stops scoring when it fires; the
// resulting context.DeadlineExceeded is mapped to 504 by jsonError.
func (s *Server) withDeadline(next http.Handler) http.Handler {
	if s.requestTimeout <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// SetReady flips the server to ready: /readyz answers 200 and ingest
// is accepted. Called once by the startup path after WAL recovery
// replay completes (or immediately when there is no WAL).
func (s *Server) SetReady() { s.ready.Store(true) }

// Ready reports whether the server has completed startup recovery.
func (s *Server) Ready() bool { return s.ready.Load() }

// handleHealthz is the liveness probe: the process is up and serving
// HTTP. It says nothing about recovery — a replaying server is alive.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, map[string]interface{}{"status": "ok", "uptime_s": time.Since(s.start).Seconds()})
}

// handleReadyz is the readiness probe: 503 until startup recovery
// (snapshot load + WAL replay) has completed, 200 after. Orchestrators
// keep traffic away until this flips.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		w.Header().Set("Retry-After", "1")
		s.writeJSONStatus(w, http.StatusServiceUnavailable,
			map[string]interface{}{"ready": false, "reason": "startup recovery in progress"})
		return
	}
	s.writeJSON(w, map[string]interface{}{"ready": true})
}

// Registry returns the server's metrics registry (for mounting
// /metrics on a separate debug listener).
func (s *Server) Registry() *obs.Registry { return s.registry }

// errorStatus refines a handler's fallback status from the error's
// identity: an expired per-request deadline is a 504 (and counts
// toward the timeout counter at the write site), a client that went
// away is recorded as 499, and an oversized POST body is a 413.
func errorStatus(code int, err error) int {
	var tooBig *http.MaxBytesError
	switch {
	case errors.As(err, &tooBig):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	}
	return code
}

// jsonError writes a JSON error body carrying the request ID so the
// response correlates with log lines and traces. Context errors
// override the caller's status (504 deadline / 499 client gone) so
// every handler maps cancellation consistently.
func (s *Server) jsonError(w http.ResponseWriter, r *http.Request, code int, err error) {
	code = errorStatus(code, err)
	if code == http.StatusGatewayTimeout {
		s.timeouts.Inc()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	body := map[string]string{"error": err.Error()}
	if id := obs.RequestIDFrom(r.Context()); id != "" {
		body["request_id"] = id
	}
	_ = json.NewEncoder(w).Encode(body)
}

// writeJSON encodes v fully before touching the ResponseWriter, so an
// encoding failure can still produce a clean 500 instead of an error
// line appended to a half-written 200 body, and successful responses
// go out in one write with an accurate Content-Length.
func (s *Server) writeJSON(w http.ResponseWriter, v interface{}) {
	s.writeJSONStatus(w, http.StatusOK, v)
}

// writeJSONStatus is writeJSON with an explicit success status code
// (e.g. ingest's 202 Accepted).
func (s *Server) writeJSONStatus(w http.ResponseWriter, code int, v interface{}) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(code)
	_, _ = w.Write(buf.Bytes())
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = fmt.Fprint(w, indexHTML)
}

func (s *Server) handleDataset(w http.ResponseWriter, r *http.Request) {
	f := s.engine.Frame()
	type colInfo struct {
		Name    string `json:"name"`
		Kind    string `json:"kind"`
		Missing int    `json:"missing"`
		Unit    string `json:"unit,omitempty"`
	}
	cols := make([]colInfo, 0, f.Cols())
	for _, name := range f.Names() {
		c, _ := f.Lookup(name)
		cols = append(cols, colInfo{
			Name: name, Kind: c.Kind().String(), Missing: c.Missing(),
			Unit: f.Meta(name).Unit,
		})
	}
	s.writeJSON(w, map[string]interface{}{
		"name":    f.Name(),
		"rows":    f.Rows(),
		"cols":    f.Cols(),
		"columns": cols,
		"classes": s.engine.Registry().Names(),
	})
}

// handleClasses describes the registered insight classes (name,
// description, arity, metrics, visualization) so UIs can build class
// pickers without hard-coding the class set.
func (s *Server) handleClasses(w http.ResponseWriter, r *http.Request) {
	type classInfo struct {
		Name        string   `json:"name"`
		Description string   `json:"description"`
		Arity       int      `json:"arity"`
		Metrics     []string `json:"metrics"`
		Vis         string   `json:"vis"`
	}
	var out []classInfo
	for _, c := range s.engine.Registry().Classes() {
		out = append(out, classInfo{
			Name:        c.Name(),
			Description: c.Description(),
			Arity:       c.Arity(),
			Metrics:     c.Metrics(),
			Vis:         string(c.VisKind()),
		})
	}
	s.writeJSON(w, map[string]interface{}{"classes": out})
}

func (s *Server) handleCarousels(w http.ResponseWriter, r *http.Request) {
	k := intParam(r, "k", 5)
	// Read lock only: the per-request k is passed explicitly instead
	// of being written into the shared session, so any number of
	// carousel requests rank concurrently (scores come from the
	// engine's memo after the first request).
	s.mu.RLock()
	res, err := s.session.RecommendationsKContext(r.Context(), k)
	focus := append([]core.Insight(nil), s.session.Focus...)
	s.mu.RUnlock()
	if err != nil {
		s.jsonError(w, r, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(w, map[string]interface{}{"carousels": res, "focus": focus})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q := query.Query{
		Metric:   r.URL.Query().Get("metric"),
		MinScore: floatParam(r, "min", 0),
		MaxScore: floatParam(r, "max", 0),
		K:        intParam(r, "k", 10),
		Approx:   boolParam(r, "approx"),
	}
	if class := r.URL.Query().Get("class"); class != "" {
		q.Classes = strings.Split(class, ",")
	}
	if fix := r.URL.Query().Get("fix"); fix != "" {
		q.Fixed = strings.Split(fix, ",")
	}
	res, err := s.engine.ExecuteContext(r.Context(), q)
	if err != nil {
		s.jsonError(w, r, http.StatusBadRequest, err)
		return
	}
	s.writeJSON(w, map[string]interface{}{"results": res})
}

func (s *Server) handleOverview(w http.ResponseWriter, r *http.Request) {
	class := r.URL.Query().Get("class")
	if class == "" {
		class = "linear"
	}
	ov, err := s.engine.OverviewContext(r.Context(), class, r.URL.Query().Get("metric"), boolParam(r, "approx"))
	if err != nil {
		s.jsonError(w, r, http.StatusBadRequest, err)
		return
	}
	if r.URL.Query().Get("format") == "svg" {
		defer obs.StartSpan(r.Context(), "render")()
		w.Header().Set("Content-Type", "image/svg+xml")
		title := fmt.Sprintf("%s overview (%s)", ov.Class, ov.Metric)
		if len(ov.RowAttrs) == 1 && len(ov.Values) == 1 {
			// Unary class: one metric value per attribute → bar chart.
			_, _ = fmt.Fprint(w, viz.BarSVG(ov.ColAttrs, ov.Values[0], title, len(ov.ColAttrs)))
			return
		}
		_, _ = fmt.Fprint(w, viz.CorrelogramSVG(ov.RowAttrs, ov.Values, title))
		return
	}
	s.writeJSON(w, ov)
}

func (s *Server) handleRender(w http.ResponseWriter, r *http.Request) {
	class := r.URL.Query().Get("class")
	attrs := r.URL.Query().Get("attrs")
	if class == "" || attrs == "" {
		s.jsonError(w, r, http.StatusBadRequest, fmt.Errorf("render needs class and attrs"))
		return
	}
	c, ok := s.engine.Registry().Lookup(class)
	if !ok {
		s.jsonError(w, r, http.StatusBadRequest, fmt.Errorf("unknown class %q", class))
		return
	}
	var svg string
	endScore := obs.StartSpan(r.Context(), "score:"+class)
	if boolParam(r, "approx") {
		// Sketch-only panel: both the score and the pixels come from
		// the preprocessed store.
		p := s.engine.Profile()
		if p == nil {
			endScore()
			s.jsonError(w, r, http.StatusBadRequest, fmt.Errorf("approx render requires a preprocessed profile"))
			return
		}
		in, err := c.ScoreApprox(p, strings.Split(attrs, ","), r.URL.Query().Get("metric"))
		endScore()
		if err != nil {
			s.jsonError(w, r, http.StatusBadRequest, err)
			return
		}
		endRender := obs.StartSpan(r.Context(), "render")
		svg, err = viz.RenderSVGFromProfile(p, in)
		endRender()
		if err != nil {
			s.jsonError(w, r, http.StatusBadRequest, err)
			return
		}
	} else {
		in, err := c.Score(s.engine.Frame(), strings.Split(attrs, ","), r.URL.Query().Get("metric"))
		endScore()
		if err != nil {
			s.jsonError(w, r, http.StatusBadRequest, err)
			return
		}
		endRender := obs.StartSpan(r.Context(), "render")
		svg, err = viz.RenderSVG(s.engine.Frame(), in)
		endRender()
		if err != nil {
			s.jsonError(w, r, http.StatusBadRequest, err)
			return
		}
	}
	w.Header().Set("Content-Type", "image/svg+xml")
	_, _ = fmt.Fprint(w, svg)
}

// handleNeighborhood returns the k insights most similar to the given
// focus insight (§2.1's "nearby insights"), optionally restricted to
// certain classes.
func (s *Server) handleNeighborhood(w http.ResponseWriter, r *http.Request) {
	class := r.URL.Query().Get("class")
	attrs := r.URL.Query().Get("attrs")
	if class == "" || attrs == "" {
		s.jsonError(w, r, http.StatusBadRequest, fmt.Errorf("neighborhood needs class and attrs"))
		return
	}
	c, ok := s.engine.Registry().Lookup(class)
	if !ok {
		s.jsonError(w, r, http.StatusBadRequest, fmt.Errorf("unknown class %q", class))
		return
	}
	focus, err := c.Score(s.engine.Frame(), strings.Split(attrs, ","), r.URL.Query().Get("metric"))
	if err != nil {
		s.jsonError(w, r, http.StatusBadRequest, err)
		return
	}
	var within []string
	if scope := r.URL.Query().Get("within"); scope != "" {
		within = strings.Split(scope, ",")
	}
	nbrs, err := s.engine.NeighborhoodContext(r.Context(), focus, within, intParam(r, "k", 10), boolParam(r, "approx"))
	if err != nil {
		s.jsonError(w, r, http.StatusBadRequest, err)
		return
	}
	s.writeJSON(w, map[string]interface{}{"focus": focus, "neighbors": nbrs})
}

// focusRequest identifies an insight to (un)focus.
type focusRequest struct {
	Class  string   `json:"class"`
	Metric string   `json:"metric"`
	Attrs  []string `json:"attrs"`
}

func (s *Server) handleFocus(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
	var req focusRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.jsonError(w, r, http.StatusBadRequest, err)
		return
	}
	c, ok := s.engine.Registry().Lookup(req.Class)
	if !ok {
		s.jsonError(w, r, http.StatusBadRequest, fmt.Errorf("unknown class %q", req.Class))
		return
	}
	in, err := c.Score(s.engine.Frame(), req.Attrs, req.Metric)
	if err != nil {
		s.jsonError(w, r, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	s.session.FocusOn(in)
	n := len(s.session.Focus)
	s.mu.Unlock()
	s.writeJSON(w, map[string]interface{}{"focused": in, "focus_count": n})
}

func (s *Server) handleUnfocus(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	s.mu.Lock()
	removed := s.session.Unfocus(key)
	if key == "" {
		s.session.Focus = nil
		removed = true
	}
	n := len(s.session.Focus)
	s.mu.Unlock()
	s.writeJSON(w, map[string]interface{}{"removed": removed, "focus_count": n})
}

// handleStats reports a JSON view over the same state /metrics
// exposes: cache counters, concurrency configuration, uptime, Go
// runtime stats, build info, and request totals.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	focusCount := len(s.session.Focus)
	s.mu.RUnlock()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	f := s.engine.Frame()
	stats := map[string]interface{}{
		"cache":       s.engine.CacheStats(),
		"prune":       s.engine.PruneStats(),
		"workers":     s.engine.Workers(),
		"dataset":     f.Name(),
		"rows":        f.Rows(),
		"generation":  s.engine.CacheStats().Generation,
		"focus_count": focusCount,
		"uptime_s":    time.Since(s.start).Seconds(),
		"runtime": map[string]interface{}{
			"goroutines":     runtime.NumGoroutine(),
			"gomaxprocs":     runtime.GOMAXPROCS(0),
			"heap_alloc":     m.HeapAlloc,
			"heap_sys":       m.HeapSys,
			"total_alloc":    m.TotalAlloc,
			"num_gc":         m.NumGC,
			"gc_pause_total": time.Duration(m.PauseTotalNs).String(),
		},
		"build": map[string]interface{}{
			"version": s.version,
			"go":      runtime.Version(),
			"os_arch": runtime.GOOS + "/" + runtime.GOARCH,
		},
		"http": map[string]interface{}{
			"requests_total":  s.httpObs.Metrics.Requests.Total(),
			"traces_recorded": s.traces.Total(),
			"panics":          s.panics.Value(),
			"timeouts":        s.timeouts.Value(),
			"sheds":           s.sheds.Value(),
		},
		"lifecycle": map[string]interface{}{
			"request_timeout_ms":   float64(s.requestTimeout) / float64(time.Millisecond),
			"max_inflight":         cap(s.gate),
			"engine_cancellations": s.engine.Cancellations(),
			"ready":                s.ready.Load(),
		},
		"ingest": map[string]interface{}{
			"queue_depth": len(s.ingestQ),
			"queue_cap":   cap(s.ingestQ),
			"requests":    s.ingestRequests.Value(),
			"rejected":    s.ingestRejected.Value(),
			"rows":        s.ingestRows.Value(),
			"batches":     s.ingestBatches.Value(),
			"coalesced":   s.ingestCoalesced.Value(),
		},
	}
	if s.durable != nil {
		stats["durable"] = s.durable.Stats()
	}
	s.writeJSON(w, stats)
}

// maxDebugTraces caps how many traces one /api/debug/traces response
// returns regardless of the requested limit, so a bad query parameter
// cannot turn the debug endpoint into an unbounded serialization.
const maxDebugTraces = 1000

// handleDebugTraces serves the recent-trace ring buffer, most recent
// first, filtered server-side: min_ms keeps only traces at least that
// slow, limit (alias n) bounds the count. Both are clamped — negative
// or NaN values fall back to the defaults, and limit never exceeds
// maxDebugTraces.
func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	minMS := floatParam(r, "min_ms", 0)
	if math.IsNaN(minMS) || minMS < 0 {
		minMS = 0
	}
	limit := intParam(r, "limit", intParam(r, "n", 0))
	if limit <= 0 || limit > maxDebugTraces {
		limit = maxDebugTraces
	}
	all := s.traces.Snapshot()
	out := make([]obs.TraceSnapshot, 0, len(all))
	for _, t := range all {
		if t.DurMS < minMS {
			continue
		}
		out = append(out, t)
		if len(out) >= limit {
			break
		}
	}
	s.writeJSON(w, map[string]interface{}{
		"traces":         out,
		"count":          len(out),
		"total_recorded": s.traces.Total(),
	})
}

// handleDebugInsights serves the insight-telemetry snapshot: per-class
// score quantiles (p50/p90/p99 within the KLL rank-error bound), hot
// columns and column tuples, candidate/pruned/filtered/emitted
// counters ("pruned" = skipped unscored by bound pruning; "filtered" =
// scored but dropped by NaN/strength filters — the meaning "pruned"
// carried before the split), top-k margin trends, the recent-query
// ring, and staleness against the engine's live cache generation.
// ?top= bounds the hot-item lists.
// Snapshotting drains the write stripes without blocking scoring.
func (s *Server) handleDebugInsights(w http.ResponseWriter, r *http.Request) {
	top := intParam(r, "top", 10)
	snap := s.telem.Snapshot(s.engine.CacheStats().Generation, top)
	s.writeJSON(w, snap)
}

func (s *Server) handleState(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet, http.MethodHead:
		// Serialize to a buffer first so a failing Save can still turn
		// into a clean 500 (same single-write discipline as writeJSON).
		s.mu.RLock()
		var buf bytes.Buffer
		err := s.session.Save(&buf)
		s.mu.RUnlock()
		if err != nil {
			s.jsonError(w, r, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
		_, _ = w.Write(buf.Bytes())
	case http.MethodPost:
		r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
		s.mu.Lock()
		defer s.mu.Unlock()
		restored, err := query.LoadSession(r.Body, s.engine)
		if err != nil {
			s.jsonError(w, r, http.StatusBadRequest, err)
			return
		}
		s.session = restored
		s.writeJSON(w, map[string]interface{}{"restored": true, "focus_count": len(restored.Focus)})
	}
}

func intParam(r *http.Request, name string, def int) int {
	if v := r.URL.Query().Get(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
	}
	return def
}

func floatParam(r *http.Request, name string, def float64) float64 {
	if v := r.URL.Query().Get(name); v != "" {
		if x, err := strconv.ParseFloat(v, 64); err == nil {
			return x
		}
	}
	return def
}

func boolParam(r *http.Request, name string) bool {
	v := r.URL.Query().Get(name)
	return v == "1" || v == "true"
}
