package server

import (
	"net/http/httptest"
	"strings"
	"testing"

	"foresight/internal/core"
	"foresight/internal/datagen"
	"foresight/internal/query"
	"foresight/internal/sketch"
)

// TestProfileBuildMetrics: server.New installs the sketch timing
// observer, so profile builds that happen while the server is up —
// sharded ingest rebuilds in particular — surface their per-phase
// breakdown in /metrics.
func TestProfileBuildMetrics(t *testing.T) {
	f := datagen.OECD(10000, 42)
	engine, err := query.NewEngine(f, core.NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(engine, 5, false))
	t.Cleanup(ts.Close)

	// A sharded build after server construction: its phase timings must
	// flow through the observer into the server's registry.
	sketch.BuildProfileSharded(f, sketch.ProfileConfig{Seed: 1, K: 64}, 2)

	_, _, body := fetch(t, ts.URL+"/metrics")
	for _, want := range []string{
		`foresight_profile_build_seconds_count{phase="build.sharded"}`,
		`foresight_profile_build_seconds_count{phase="build.shard"}`,
		`foresight_profile_build_seconds_count{phase="build.project"}`,
		`foresight_profile_build_seconds_count{phase="build.merge"}`,
		`foresight_profile_build_seconds_count{phase="merge"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
