package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"foresight/internal/core"
	"foresight/internal/datagen"
	"foresight/internal/query"
	"foresight/internal/sketch"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	f := datagen.OECD(0, 42)
	engine, err := query.NewEngine(f, core.NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(engine, 5, false))
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string, out interface{}) *http.Response {
	t.Helper()
	res, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if out != nil {
		if err := json.NewDecoder(res.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return res
}

func TestIndexPage(t *testing.T) {
	ts := newTestServer(t)
	res, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != 200 || !strings.Contains(res.Header.Get("Content-Type"), "text/html") {
		t.Errorf("index: %d %s", res.StatusCode, res.Header.Get("Content-Type"))
	}
	// Unknown paths 404.
	res2, _ := http.Get(ts.URL + "/nope")
	if res2.StatusCode != 404 {
		t.Errorf("unknown path = %d, want 404", res2.StatusCode)
	}
	res2.Body.Close()
}

func TestDatasetEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var out struct {
		Name    string   `json:"name"`
		Rows    int      `json:"rows"`
		Cols    int      `json:"cols"`
		Classes []string `json:"classes"`
	}
	getJSON(t, ts.URL+"/api/dataset", &out)
	if out.Name != "oecd" || out.Rows != 35 || out.Cols != 25 {
		t.Errorf("dataset = %+v", out)
	}
	if len(out.Classes) != 12 {
		t.Errorf("classes = %d", len(out.Classes))
	}
}

func TestCarouselsAndFocusFlow(t *testing.T) {
	ts := newTestServer(t)
	var out struct {
		Carousels []query.Result `json:"carousels"`
		Focus     []core.Insight `json:"focus"`
	}
	getJSON(t, ts.URL+"/api/carousels?k=3", &out)
	if len(out.Carousels) < 7 {
		t.Fatalf("carousels = %d", len(out.Carousels))
	}
	for _, c := range out.Carousels {
		if len(c.Insights) > 3 {
			t.Errorf("carousel %s exceeds k", c.Class)
		}
	}
	if len(out.Focus) != 0 {
		t.Error("fresh session should have empty focus")
	}

	// Focus the top linear insight.
	var linear *query.Result
	for i := range out.Carousels {
		if out.Carousels[i].Class == "linear" {
			linear = &out.Carousels[i]
		}
	}
	if linear == nil || len(linear.Insights) == 0 {
		t.Fatal("no linear carousel")
	}
	top := linear.Insights[0]
	body, _ := json.Marshal(map[string]interface{}{
		"class": top.Class, "metric": top.Metric, "attrs": top.Attrs,
	})
	res, err := http.Post(ts.URL+"/api/focus", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("focus status = %d", res.StatusCode)
	}
	getJSON(t, ts.URL+"/api/carousels?k=3", &out)
	if len(out.Focus) != 1 {
		t.Fatalf("focus count = %d", len(out.Focus))
	}

	// Unfocus by key.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/api/unfocus?key="+top.Key(), nil)
	res2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var un struct {
		Removed bool `json:"removed"`
	}
	_ = json.NewDecoder(res2.Body).Decode(&un)
	res2.Body.Close()
	if !un.Removed {
		t.Error("unfocus did not remove")
	}
	// GET on focus is rejected.
	res3, _ := http.Get(ts.URL + "/api/focus")
	if res3.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET focus = %d", res3.StatusCode)
	}
	res3.Body.Close()
}

func TestQueryEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var out struct {
		Results []query.Result `json:"results"`
	}
	getJSON(t, ts.URL+"/api/query?class=linear&fix=TimeDevotedToLeisure&k=3", &out)
	if len(out.Results) != 1 {
		t.Fatalf("results = %d", len(out.Results))
	}
	for _, in := range out.Results[0].Insights {
		found := false
		for _, a := range in.Attrs {
			if a == "TimeDevotedToLeisure" {
				found = true
			}
		}
		if !found {
			t.Errorf("fixed attr missing in %v", in.Attrs)
		}
	}
	// Bad class → 400 with JSON error.
	res, _ := http.Get(ts.URL + "/api/query?class=bogus")
	if res.StatusCode != 400 {
		t.Errorf("bogus class = %d", res.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	_ = json.NewDecoder(res.Body).Decode(&e)
	res.Body.Close()
	if e.Error == "" {
		t.Error("error body missing")
	}
}

func TestOverviewEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var ov query.Overview
	getJSON(t, ts.URL+"/api/overview?class=linear", &ov)
	if !ov.Symmetric || len(ov.RowAttrs) != 24 {
		t.Errorf("overview: symmetric=%v attrs=%d", ov.Symmetric, len(ov.RowAttrs))
	}
	// SVG format.
	res, _ := http.Get(ts.URL + "/api/overview?class=linear&format=svg")
	if ct := res.Header.Get("Content-Type"); !strings.Contains(ct, "svg") {
		t.Errorf("overview svg content type = %s", ct)
	}
	res.Body.Close()
	// Arity-3 class has no overview.
	res2, _ := http.Get(ts.URL + "/api/overview?class=segmentation")
	if res2.StatusCode != 400 {
		t.Errorf("segmentation overview = %d, want 400", res2.StatusCode)
	}
	res2.Body.Close()
}

func TestRenderEndpoint(t *testing.T) {
	ts := newTestServer(t)
	res, _ := http.Get(ts.URL + "/api/render?class=skew&attrs=SelfReportedHealth")
	if res.StatusCode != 200 || !strings.Contains(res.Header.Get("Content-Type"), "svg") {
		t.Errorf("render = %d %s", res.StatusCode, res.Header.Get("Content-Type"))
	}
	res.Body.Close()
	for _, bad := range []string{
		"/api/render",                           // missing params
		"/api/render?class=bogus&attrs=x",       // unknown class
		"/api/render?class=skew&attrs=NotThere", // unknown attr
	} {
		res, _ := http.Get(ts.URL + bad)
		if res.StatusCode != 400 {
			t.Errorf("%s = %d, want 400", bad, res.StatusCode)
		}
		res.Body.Close()
	}
}

func TestStateRoundTrip(t *testing.T) {
	ts := newTestServer(t)
	res, err := http.Get(ts.URL + "/api/state")
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	b := make([]byte, 4096)
	for {
		n, err := res.Body.Read(b)
		buf.Write(b[:n])
		if err != nil {
			break
		}
	}
	res.Body.Close()
	if !strings.Contains(buf.String(), "oecd") {
		t.Errorf("state = %q", buf.String())
	}
	res2, err := http.Post(ts.URL+"/api/state", "application/json", strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if res2.StatusCode != 200 {
		t.Errorf("state restore = %d", res2.StatusCode)
	}
	res2.Body.Close()
	// Corrupt state.
	res3, _ := http.Post(ts.URL+"/api/state", "application/json", strings.NewReader("{"))
	if res3.StatusCode != 400 {
		t.Errorf("corrupt state = %d", res3.StatusCode)
	}
	res3.Body.Close()
}

func TestRenderApproxEndpoint(t *testing.T) {
	f := datagen.OECD(0, 42)
	profile := sketch.BuildProfile(f, sketch.ProfileConfig{Seed: 1, K: 64})
	engine, err := query.NewEngine(f, core.NewRegistry(), profile)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(engine, 5, true))
	defer ts.Close()
	res, _ := http.Get(ts.URL + "/api/render?class=skew&attrs=SelfReportedHealth&approx=1")
	if res.StatusCode != 200 || !strings.Contains(res.Header.Get("Content-Type"), "svg") {
		t.Errorf("approx render = %d %s", res.StatusCode, res.Header.Get("Content-Type"))
	}
	res.Body.Close()
	// Without a profile, approx render is a 400.
	bare, err := query.NewEngine(f, core.NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(New(bare, 5, false))
	defer ts2.Close()
	res2, _ := http.Get(ts2.URL + "/api/render?class=skew&attrs=SelfReportedHealth&approx=1")
	if res2.StatusCode != 400 {
		t.Errorf("approx render without profile = %d, want 400", res2.StatusCode)
	}
	res2.Body.Close()
}

func TestClassesEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var out struct {
		Classes []struct {
			Name    string   `json:"name"`
			Arity   int      `json:"arity"`
			Metrics []string `json:"metrics"`
		} `json:"classes"`
	}
	getJSON(t, ts.URL+"/api/classes", &out)
	if len(out.Classes) != 12 {
		t.Fatalf("classes = %d, want 12", len(out.Classes))
	}
	for _, c := range out.Classes {
		if c.Name == "" || c.Arity < 1 || len(c.Metrics) == 0 {
			t.Errorf("incomplete class info: %+v", c)
		}
	}
}

func TestOverviewSVGUnaryClass(t *testing.T) {
	ts := newTestServer(t)
	res, _ := http.Get(ts.URL + "/api/overview?class=skew&format=svg")
	body := make([]byte, 4096)
	n, _ := res.Body.Read(body)
	res.Body.Close()
	svg := string(body[:n])
	if !strings.HasPrefix(svg, "<svg") {
		t.Fatalf("unary overview not SVG: %.80s", svg)
	}
	// Bar chart, not a 1×1 correlogram: expect rect bars.
	if !strings.Contains(svg, "<rect") {
		t.Error("unary overview should render bars")
	}
}

func TestNeighborhoodEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var out struct {
		Focus     core.Insight   `json:"focus"`
		Neighbors []core.Insight `json:"neighbors"`
	}
	getJSON(t, ts.URL+"/api/neighborhood?class=linear&attrs=LifeSatisfaction,SelfReportedHealth&k=5&within=linear", &out)
	if len(out.Neighbors) != 5 {
		t.Fatalf("neighbors = %d, want 5", len(out.Neighbors))
	}
	for _, nb := range out.Neighbors {
		if nb.Key() == out.Focus.Key() {
			t.Error("focus must not be its own neighbor")
		}
	}
	// Missing params and bad class.
	res, _ := http.Get(ts.URL + "/api/neighborhood")
	if res.StatusCode != 400 {
		t.Errorf("missing params = %d", res.StatusCode)
	}
	res.Body.Close()
	res2, _ := http.Get(ts.URL + "/api/neighborhood?class=bogus&attrs=x")
	if res2.StatusCode != 400 {
		t.Errorf("bad class = %d", res2.StatusCode)
	}
	res2.Body.Close()
}

func TestStatsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	// Warm the cache with one carousel request, then a second for hits.
	getJSON(t, ts.URL+"/api/carousels?k=3", nil)
	getJSON(t, ts.URL+"/api/carousels?k=5", nil)
	var out struct {
		Cache   query.CacheStats `json:"cache"`
		Workers int              `json:"workers"`
		Dataset string           `json:"dataset"`
	}
	getJSON(t, ts.URL+"/api/stats", &out)
	if out.Dataset != "oecd" || out.Workers < 1 {
		t.Errorf("stats = %+v", out)
	}
	if !out.Cache.Enabled || out.Cache.Misses == 0 || out.Cache.Entries == 0 {
		t.Errorf("cache never filled: %+v", out.Cache)
	}
	if out.Cache.Hits == 0 {
		t.Errorf("second carousel request should hit the memo: %+v", out.Cache)
	}
}

// TestConcurrentReadEndpoints hammers every read-only endpoint from
// many goroutines against one server (run under -race) and checks the
// carousel payload stays identical to the single-threaded answer.
func TestConcurrentReadEndpoints(t *testing.T) {
	ts := newTestServer(t)
	var golden struct {
		Carousels []query.Result `json:"carousels"`
	}
	getJSON(t, ts.URL+"/api/carousels?k=3", &golden)
	if len(golden.Carousels) == 0 {
		t.Fatal("no golden carousels")
	}
	urls := []string{
		"/api/carousels?k=3",
		"/api/query?class=linear&k=5",
		"/api/overview?class=linear",
		"/api/neighborhood?class=linear&attrs=LifeSatisfaction,SelfReportedHealth&k=5",
		"/api/stats",
		"/api/dataset",
		"/api/state",
	}
	const clients = 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for round := 0; round < 4; round++ {
				url := urls[(c+round)%len(urls)]
				res, err := http.Get(ts.URL + url)
				if err != nil {
					t.Error(err)
					return
				}
				if res.StatusCode != 200 {
					t.Errorf("%s = %d", url, res.StatusCode)
					res.Body.Close()
					return
				}
				if url == urls[0] {
					var out struct {
						Carousels []query.Result `json:"carousels"`
					}
					if err := json.NewDecoder(res.Body).Decode(&out); err != nil {
						t.Error(err)
						res.Body.Close()
						return
					}
					if len(out.Carousels) != len(golden.Carousels) {
						t.Errorf("carousels %d vs %d", len(out.Carousels), len(golden.Carousels))
					} else {
						for i := range out.Carousels {
							a, b := golden.Carousels[i], out.Carousels[i]
							if a.Class != b.Class || len(a.Insights) != len(b.Insights) {
								t.Errorf("carousel %d shape differs", i)
								continue
							}
							for j := range a.Insights {
								if a.Insights[j].Key() != b.Insights[j].Key() ||
									a.Insights[j].Score != b.Insights[j].Score {
									t.Errorf("carousel %d[%d] differs", i, j)
								}
							}
						}
					}
				} else {
					_, _ = io.Copy(io.Discard, res.Body)
				}
				res.Body.Close()
			}
		}(c)
	}
	wg.Wait()
}

// TestConcurrentFocusAndReads mixes writers (focus/unfocus) with the
// read endpoints; meant for -race, asserts only well-formed responses.
func TestConcurrentFocusAndReads(t *testing.T) {
	ts := newTestServer(t)
	var golden struct {
		Carousels []query.Result `json:"carousels"`
	}
	getJSON(t, ts.URL+"/api/carousels?k=2", &golden)
	var linear *query.Result
	for i := range golden.Carousels {
		if golden.Carousels[i].Class == "linear" {
			linear = &golden.Carousels[i]
		}
	}
	if linear == nil || len(linear.Insights) == 0 {
		t.Fatal("no linear carousel")
	}
	top := linear.Insights[0]
	body, _ := json.Marshal(map[string]interface{}{
		"class": top.Class, "metric": top.Metric, "attrs": top.Attrs,
	})
	var wg sync.WaitGroup
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for round := 0; round < 4; round++ {
				if c%3 == 0 {
					if round%2 == 0 {
						res, err := http.Post(ts.URL+"/api/focus", "application/json",
							strings.NewReader(string(body)))
						if err != nil {
							t.Error(err)
							return
						}
						res.Body.Close()
					} else {
						req, _ := http.NewRequest(http.MethodPost, ts.URL+"/api/unfocus?key="+top.Key(), nil)
						res, err := http.DefaultClient.Do(req)
						if err != nil {
							t.Error(err)
							return
						}
						res.Body.Close()
					}
					continue
				}
				res, err := http.Get(ts.URL + "/api/carousels?k=2")
				if err != nil {
					t.Error(err)
					return
				}
				if res.StatusCode != 200 {
					t.Errorf("carousels = %d", res.StatusCode)
				}
				_, _ = io.Copy(io.Discard, res.Body)
				res.Body.Close()
			}
		}(c)
	}
	wg.Wait()
}
