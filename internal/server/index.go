package server

// indexHTML is the self-contained demo page: insight carousels
// (Figure 1), click-to-focus with live recommendation updates (§4.1),
// and the per-class overview heat map (Figure 2).
const indexHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>Foresight — Recommending Visual Insights</title>
<style>
  body { font-family: -apple-system, "Segoe UI", sans-serif; margin: 0; background: #f7f7f9; color: #222; }
  header { background: #2b3a55; color: white; padding: 14px 22px; }
  header h1 { margin: 0; font-size: 20px; }
  header .sub { opacity: 0.75; font-size: 13px; }
  #focusbar { padding: 8px 22px; background: #fff6e0; font-size: 13px; border-bottom: 1px solid #eee; }
  #focusbar .chip { display: inline-block; background: #2b3a55; color: white; border-radius: 12px;
                    padding: 2px 10px; margin-right: 6px; cursor: pointer; }
  .carousel { margin: 14px 22px; }
  .carousel h2 { font-size: 15px; margin: 6px 0; color: #2b3a55; }
  .row { display: flex; overflow-x: auto; gap: 10px; padding-bottom: 6px; }
  .card { background: white; border: 1px solid #ddd; border-radius: 6px; min-width: 440px;
          cursor: pointer; transition: box-shadow 0.15s; }
  .card:hover { box-shadow: 0 3px 10px rgba(0,0,0,0.18); }
  .card .score { font-size: 12px; color: #555; padding: 4px 10px; }
  .card img { display: block; }
  #overview { margin: 14px 22px; background: white; border: 1px solid #ddd; border-radius: 6px;
              padding: 10px; overflow-x: auto; }
  select, button { font-size: 13px; margin-left: 8px; }
</style>
</head>
<body>
<header>
  <h1>Foresight</h1>
  <div class="sub">Recommending visual insights — click a card to focus it; recommendations update around your focus.</div>
</header>
<div id="focusbar">focus: <span id="focuslist">(none)</span>
  <button onclick="clearFocus()">clear</button>
  <label>overview:<select id="ovclass" onchange="loadOverview()"></select></label>
</div>
<div id="carousels"></div>
<div id="overview"></div>
<script>
async function loadCarousels() {
  const res = await fetch('/api/carousels?k=5');
  const data = await res.json();
  const root = document.getElementById('carousels');
  root.innerHTML = '';
  for (const c of data.carousels) {
    const div = document.createElement('div');
    div.className = 'carousel';
    const h = document.createElement('h2');
    h.textContent = c.class + ' — ranked by ' + c.metric;
    div.appendChild(h);
    const row = document.createElement('div');
    row.className = 'row';
    for (const ins of c.insights) {
      const card = document.createElement('div');
      card.className = 'card';
      const score = document.createElement('div');
      score.className = 'score';
      score.textContent = ins.attrs.join(', ') + '  ·  ' + ins.metric + ' = ' + ins.score.toFixed(3);
      card.appendChild(score);
      const img = document.createElement('img');
      img.src = '/api/render?class=' + encodeURIComponent(ins.class) +
        '&metric=' + encodeURIComponent(ins.metric) +
        '&attrs=' + encodeURIComponent(ins.attrs.join(','));
      img.width = 440;
      card.appendChild(img);
      card.onclick = () => focusInsight(ins);
      row.appendChild(card);
    }
    div.appendChild(row);
    root.appendChild(div);
  }
  const fl = document.getElementById('focuslist');
  fl.innerHTML = '';
  if (!data.focus || data.focus.length === 0) { fl.textContent = '(none)'; }
  else {
    for (const f of data.focus) {
      const chip = document.createElement('span');
      chip.className = 'chip';
      chip.textContent = f.class + '(' + f.attrs.join(',') + ') ✕';
      chip.onclick = () => unfocus(f.class + '/' + f.metric + '/' + f.attrs.join(','));
      fl.appendChild(chip);
    }
  }
}
async function focusInsight(ins) {
  await fetch('/api/focus', { method: 'POST', body: JSON.stringify(
    { class: ins.class, metric: ins.metric, attrs: ins.attrs }) });
  loadCarousels();
}
async function unfocus(key) {
  await fetch('/api/unfocus?key=' + encodeURIComponent(key), { method: 'POST' });
  loadCarousels();
}
async function clearFocus() {
  await fetch('/api/unfocus', { method: 'POST' });
  loadCarousels();
}
async function loadOverview() {
  const cls = document.getElementById('ovclass').value;
  const res = await fetch('/api/overview?class=' + cls + '&format=svg');
  document.getElementById('overview').innerHTML = await res.text();
}
async function loadClasses() {
  const res = await fetch('/api/classes');
  const data = await res.json();
  const sel = document.getElementById('ovclass');
  sel.innerHTML = '';
  for (const c of data.classes) {
    if (c.arity > 2) continue; // arity-3 classes have no overview
    const opt = document.createElement('option');
    opt.value = c.name;
    opt.textContent = c.name + ' (' + c.metrics[0] + ')';
    opt.title = c.description;
    sel.appendChild(opt);
  }
}
loadCarousels();
loadClasses().then(loadOverview);
</script>
</body>
</html>
`
