package server

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"foresight/internal/core"
	"foresight/internal/datagen"
	"foresight/internal/frame"
	"foresight/internal/query"
	"foresight/internal/sketch"
)

// lagClass scores slowly (and, with gate set, blocks until the gate
// is closed), so tests can hold a request mid-scoring on purpose.
type lagClass struct {
	calls atomic.Int64
	delay time.Duration
	gate  chan struct{}
}

func (c *lagClass) Name() string          { return "lag" }
func (c *lagClass) Description() string   { return "test class with slow scoring" }
func (c *lagClass) Arity() int            { return 1 }
func (c *lagClass) Metrics() []string     { return []string{"len"} }
func (c *lagClass) VisKind() core.VisKind { return core.VisBar }
func (c *lagClass) Candidates(f *frame.Frame) [][]string {
	var out [][]string
	for _, nc := range f.NumericColumns() {
		out = append(out, []string{nc.Name()})
	}
	return out
}
func (c *lagClass) Score(f *frame.Frame, attrs []string, metric string) (core.Insight, error) {
	c.calls.Add(1)
	if c.gate != nil {
		<-c.gate
	}
	if c.delay > 0 {
		time.Sleep(c.delay)
	}
	return core.Insight{
		Class: "lag", Metric: "len", Attrs: attrs,
		Score: float64(len(attrs[0])), Raw: float64(len(attrs[0])), Vis: core.VisBar,
	}, nil
}
func (c *lagClass) ScoreApprox(p *sketch.DatasetProfile, attrs []string, metric string) (core.Insight, error) {
	return c.Score(nil, attrs, metric)
}

// boomClass panics on every Score call.
type boomClass struct{}

func (boomClass) Name() string          { return "boom" }
func (boomClass) Description() string   { return "test class that panics" }
func (boomClass) Arity() int            { return 1 }
func (boomClass) Metrics() []string     { return []string{"len"} }
func (boomClass) VisKind() core.VisKind { return core.VisBar }
func (boomClass) Candidates(f *frame.Frame) [][]string {
	var out [][]string
	for _, nc := range f.NumericColumns() {
		out = append(out, []string{nc.Name()})
	}
	return out
}
func (boomClass) Score(f *frame.Frame, attrs []string, metric string) (core.Insight, error) {
	panic("scorer exploded in a test")
}
func (boomClass) ScoreApprox(p *sketch.DatasetProfile, attrs []string, metric string) (core.Insight, error) {
	panic("scorer exploded in a test")
}

// newLifecycleServer builds a test server over the given classes with
// explicit serving options, returning the engine for assertions.
func newLifecycleServer(t *testing.T, classes []core.Class, opts Options) (*httptest.Server, *query.Engine) {
	t.Helper()
	f := datagen.OECD(0, 42)
	reg := core.NewEmptyRegistry()
	for _, c := range classes {
		if err := reg.Register(c); err != nil {
			t.Fatal(err)
		}
	}
	engine, err := query.NewEngine(f, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(engine, 5, false, opts))
	t.Cleanup(ts.Close)
	return ts, engine
}

func waitForCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func metricsBody(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	res, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	b, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// A request that outlives -request-timeout gets a 504 JSON error with
// a request ID, the engine counts the cancellation, and the timeout
// counter shows up at /metrics.
func TestRequestTimeoutReturns504(t *testing.T) {
	lag := &lagClass{delay: 20 * time.Millisecond}
	ts, engine := newLifecycleServer(t, []core.Class{lag}, Options{RequestTimeout: 50 * time.Millisecond})

	var body struct {
		Error     string `json:"error"`
		RequestID string `json:"request_id"`
	}
	res := getJSON(t, ts.URL+"/api/overview?class=lag", &body)
	if res.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", res.StatusCode)
	}
	if body.Error == "" || body.RequestID == "" {
		t.Errorf("504 body = %+v, want error and request_id", body)
	}
	if engine.Cancellations() == 0 {
		t.Error("expired deadline did not reach the engine's cancellation counter")
	}
	waitForCond(t, "worker pool to drain after 504", func() bool { return engine.ScoringInflight() == 0 })
	if m := metricsBody(t, ts); !strings.Contains(m, "foresight_http_timeouts_total 1") {
		t.Errorf("/metrics missing timeout counter:\n%s", m)
	}
}

// A client that disconnects mid-request cancels the engine's work:
// the cancellation is counted and the scoring gauge drains to zero
// instead of grinding on for a reader that is gone.
func TestClientDisconnectCancelsEngine(t *testing.T) {
	lag := &lagClass{delay: 20 * time.Millisecond}
	ts, engine := newLifecycleServer(t, []core.Class{lag}, Options{})

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/api/overview?class=lag", nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		res, err := http.DefaultClient.Do(req)
		if err == nil {
			res.Body.Close()
			t.Error("request succeeded despite client cancellation")
		}
	}()
	waitForCond(t, "engine to start scoring", func() bool { return lag.calls.Load() >= 1 })
	cancel()
	<-done

	waitForCond(t, "engine to count the disconnect", func() bool { return engine.Cancellations() >= 1 })
	waitForCond(t, "worker pool to drain after disconnect", func() bool { return engine.ScoringInflight() == 0 })
}

// Once -max-inflight requests are being served, the next API request
// is shed with 503 + Retry-After instead of queueing; the blocked
// request still completes once unblocked.
func TestMaxInflightShedsExcessLoad(t *testing.T) {
	lag := &lagClass{gate: make(chan struct{})}
	ts, _ := newLifecycleServer(t, []core.Class{lag}, Options{MaxInflight: 1})

	firstStatus := make(chan int, 1)
	go func() {
		res, err := http.Get(ts.URL + "/api/overview?class=lag")
		if err != nil {
			firstStatus <- -1
			return
		}
		defer res.Body.Close()
		_, _ = io.Copy(io.Discard, res.Body)
		firstStatus <- res.StatusCode
	}()
	waitForCond(t, "first request to hold the gate", func() bool { return lag.calls.Load() >= 1 })

	var body struct {
		Error string `json:"error"`
	}
	res := getJSON(t, ts.URL+"/api/dataset", &body)
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second request = %d, want 503", res.StatusCode)
	}
	if res.Header.Get("Retry-After") == "" {
		t.Error("503 missing Retry-After header")
	}
	if !strings.Contains(body.Error, "saturated") {
		t.Errorf("503 body = %+v", body)
	}

	// The index page and /metrics stay reachable under saturation.
	if res, err := http.Get(ts.URL + "/"); err != nil || res.StatusCode != 200 {
		t.Errorf("index under saturation: res=%v err=%v", res, err)
	} else {
		res.Body.Close()
	}
	if m := metricsBody(t, ts); !strings.Contains(m, "foresight_http_sheds_total 1") {
		t.Errorf("/metrics missing shed counter:\n%s", m)
	}

	close(lag.gate)
	if st := <-firstStatus; st != http.StatusOK {
		t.Errorf("gated request finished with %d, want 200", st)
	}
}

// A panicking scorer becomes a 500 JSON error on that request only:
// the process keeps serving, and the panic counter is visible.
func TestPanicIsolatedTo500(t *testing.T) {
	ts, engine := newLifecycleServer(t, []core.Class{boomClass{}, &lagClass{}}, Options{})

	var body struct {
		Error     string `json:"error"`
		RequestID string `json:"request_id"`
	}
	res := getJSON(t, ts.URL+"/api/overview?class=boom", &body)
	if res.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", res.StatusCode)
	}
	if !strings.Contains(body.Error, "panic") || body.RequestID == "" {
		t.Errorf("500 body = %+v, want panic mention and request_id", body)
	}

	// The server survives: unrelated endpoints and other classes work.
	res2 := getJSON(t, ts.URL+"/api/dataset", nil)
	if res2.StatusCode != http.StatusOK {
		t.Errorf("post-panic /api/dataset = %d, want 200", res2.StatusCode)
	}
	res3 := getJSON(t, ts.URL+"/api/overview?class=lag", nil)
	if res3.StatusCode != http.StatusOK {
		t.Errorf("post-panic /api/overview?class=lag = %d, want 200", res3.StatusCode)
	}
	waitForCond(t, "worker pool to drain after panic", func() bool { return engine.ScoringInflight() == 0 })
	if m := metricsBody(t, ts); !strings.Contains(m, "foresight_http_panics_total 1") {
		t.Errorf("/metrics missing panic counter:\n%s", m)
	}
}

// Oversized POST bodies are rejected with 413 on both JSON endpoints.
func TestOversizedBodiesRejected(t *testing.T) {
	ts := newTestServer(t)
	// A syntactically valid prefix, so the decoder keeps reading until
	// the MaxBytesReader cap fires rather than erroring on byte one.
	huge := []byte(`{"pad":"` + strings.Repeat("x", 1<<20+512) + `"}`)
	for _, path := range []string{"/api/focus", "/api/state"} {
		res, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(huge))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		res.Body.Close()
		if res.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("POST %s with 1MB+ body = %d, want 413", path, res.StatusCode)
		}
	}
}

// JSON responses are written in one shot with an accurate
// Content-Length (the half-written-200 bug class is gone).
func TestJSONResponsesCarryContentLength(t *testing.T) {
	ts := newTestServer(t)
	for _, path := range []string{"/api/dataset", "/api/state", "/api/stats"} {
		res, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(res.Body)
		res.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		cl := res.Header.Get("Content-Length")
		if cl == "" {
			t.Errorf("GET %s: no Content-Length", path)
			continue
		}
		if n, _ := strconv.Atoi(cl); n != len(b) {
			t.Errorf("GET %s: Content-Length %s != body %d", path, cl, len(b))
		}
	}
}
