package server

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"foresight/internal/frame"
	"foresight/internal/query"
)

// Live ingest over HTTP: POST /api/ingest accepts a row batch as CSV
// (with a header naming dataset columns) or JSON ({"columns": [...],
// "rows": [[...]]} or {"rows": [{column: value}]}), bounded by the
// usual body cap. Batches flow through a small bounded queue drained
// by one worker goroutine, which coalesces whatever is queued into a
// single Engine.Ingest — under a burst of small appends the sketch
// delta and cache invalidation run once per group instead of once per
// request. The response is 202 Accepted with the rows taken from this
// request, the dataset's new row count, and the new score-cache
// generation; a full queue sheds with 503 + Retry-After, the same
// back-pressure contract as the inflight gate.

// maxCoalescedRows bounds how many rows the worker folds into one
// Engine.Ingest before replying; beyond it, waiters would trade too
// much acknowledgement latency for batching.
const maxCoalescedRows = 100000

// errServerClosing fails batches still queued when Close runs.
var errServerClosing = errors.New("ingest: server closing")

type ingestReply struct {
	res query.IngestResult
	err error
}

// ingestJob is one accepted batch: records normalized to the frame's
// full column order (so queued jobs concatenate directly), the
// requester's context (its values — request ID, trace — follow the
// batch into the engine; its cancellation does not, because an applied
// batch must be acknowledged truthfully even if the client left), and
// a buffered reply channel so the worker never blocks on a waiter.
type ingestJob struct {
	ctx     context.Context
	records [][]string
	done    chan ingestReply
}

// startIngest wires the queue, metrics, and worker; called from New.
func (s *Server) startIngest(queueSize int) {
	if queueSize <= 0 {
		queueSize = 32
	}
	s.ingestQ = make(chan *ingestJob, queueSize)
	s.ingestStop = make(chan struct{})
	reg := s.registry
	s.ingestRequests = reg.Counter("foresight_ingest_requests_total",
		"Ingest requests accepted into the queue.")
	s.ingestRejected = reg.Counter("foresight_ingest_rejected_total",
		"Ingest requests shed because the queue was full (returned as 503).")
	s.ingestRows = reg.Counter("foresight_ingest_rows_total",
		"Rows applied to the dataset by ingest.")
	s.ingestBatches = reg.Counter("foresight_ingest_batches_total",
		"Engine ingests applied (coalesced groups count once).")
	s.ingestCoalesced = reg.Counter("foresight_ingest_coalesced_total",
		"Ingest requests folded into another request's engine ingest.")
	s.ingestSeconds = reg.Histogram("foresight_ingest_seconds",
		"Engine ingest latency (append + sketch delta + swap).", nil)
	reg.GaugeFunc("foresight_ingest_queue_depth",
		"Ingest batches waiting in the queue.",
		func() float64 { return float64(len(s.ingestQ)) })
	s.ingestWG.Add(1)
	go s.ingestWorker()
}

// Close stops the ingest worker, failing batches still queued with a
// server-closing error, and waits for it to exit. The HTTP routes
// remain usable for reads; further ingest posts fail fast with 503
// (handleIngest selects on ingestStop). Safe to call more than once.
func (s *Server) Close() {
	s.closeOnce.Do(func() { close(s.ingestStop) })
	s.ingestWG.Wait()
	// Sweep batches that slipped into the queue after the worker's own
	// drain; their handlers are waiting on done (or already gone).
	for {
		select {
		case j := <-s.ingestQ:
			j.done <- ingestReply{err: errServerClosing}
		default:
			return
		}
	}
}

// ingestWorker drains the queue: one job, plus whatever else is
// already queued (up to maxCoalescedRows), applied as one engine
// ingest. On a group failure each job is retried alone so one bad
// batch cannot poison the others' acknowledgements.
func (s *Server) ingestWorker() {
	defer s.ingestWG.Done()
	for {
		select {
		case <-s.ingestStop:
			for {
				select {
				case j := <-s.ingestQ:
					j.done <- ingestReply{err: errServerClosing}
				default:
					return
				}
			}
		case j := <-s.ingestQ:
			group := []*ingestJob{j}
			rows := len(j.records)
		coalesce:
			for rows < maxCoalescedRows {
				select {
				case nj := <-s.ingestQ:
					group = append(group, nj)
					rows += len(nj.records)
				default:
					break coalesce
				}
			}
			if len(group) > 1 {
				s.ingestCoalesced.Add(uint64(len(group) - 1))
			}
			records := make([][]string, 0, rows)
			for _, gj := range group {
				records = append(records, gj.records...)
			}
			// The lead request's context carries its trace and request ID
			// into the engine spans; cancellation is stripped because the
			// group is applied on behalf of every waiter.
			ctx := context.WithoutCancel(group[0].ctx)
			start := time.Now()
			res, err := s.engine.Ingest(ctx, frame.RowBatch{Records: records}, nil)
			s.ingestSeconds.Observe(time.Since(start).Seconds())
			if err != nil && len(group) > 1 {
				for _, gj := range group {
					r2, e2 := s.engine.Ingest(context.WithoutCancel(gj.ctx),
						frame.RowBatch{Records: gj.records}, nil)
					if e2 == nil {
						s.ingestBatches.Inc()
						s.ingestRows.Add(uint64(len(gj.records)))
					}
					gj.done <- ingestReply{res: r2, err: e2}
				}
				continue
			}
			if err == nil {
				s.ingestBatches.Inc()
				s.ingestRows.Add(uint64(rows))
			}
			for _, gj := range group {
				gj.done <- ingestReply{res: res, err: err}
			}
		}
	}
}

// handleIngest accepts one row batch and replies 202 once it has been
// applied (possibly coalesced with neighbors). The body cap, queue
// bound, and per-request deadline make the path fully bounded; a
// client that stops waiting gets the usual 504/499 mapping while its
// already-queued batch still applies.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	s.ingestRequests.Inc()
	// Writes are rejected until startup recovery has replayed the WAL:
	// accepting a batch before the log is open again would ack rows the
	// durability layer cannot log.
	if !s.ready.Load() {
		s.ingestRejected.Inc()
		w.Header().Set("Retry-After", "1")
		s.jsonError(w, r, http.StatusServiceUnavailable,
			fmt.Errorf("ingest unavailable: startup recovery in progress; retry shortly"))
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
	names := s.engine.Frame().Names()
	var records [][]string
	var err error
	if ct := r.Header.Get("Content-Type"); strings.Contains(ct, "csv") {
		records, err = parseCSVBatch(r.Body, names)
	} else {
		records, err = parseJSONBatch(r.Body, names)
	}
	if err != nil {
		s.jsonError(w, r, http.StatusBadRequest, err)
		return
	}
	if len(records) == 0 {
		s.jsonError(w, r, http.StatusBadRequest, fmt.Errorf("ingest: no rows in batch"))
		return
	}
	j := &ingestJob{ctx: r.Context(), records: records, done: make(chan ingestReply, 1)}
	select {
	case <-s.ingestStop:
		// Fail fast after Close: the worker is gone, so waiting on the
		// queue would only ride out the request deadline.
		s.closingError(w, r)
		return
	default:
	}
	select {
	case s.ingestQ <- j:
	default:
		s.ingestRejected.Inc()
		w.Header().Set("Retry-After", "1")
		s.jsonError(w, r, http.StatusServiceUnavailable,
			fmt.Errorf("ingest queue full (%d batches pending); retry shortly", cap(s.ingestQ)))
		return
	}
	select {
	case <-r.Context().Done():
		// The queued batch may still apply; only the acknowledgement is
		// abandoned.
		s.jsonError(w, r, http.StatusGatewayTimeout, r.Context().Err())
	case <-s.ingestStop:
		// Shutdown raced the enqueue. The worker's drain (or Close's
		// sweep, or an in-flight apply) still replies; give it a moment
		// so an applied batch is acknowledged truthfully instead of
		// being reported retryable (a false 503 would invite a duplicate
		// retry).
		select {
		case rep := <-j.done:
			s.ingestReply(w, r, rep, len(records))
		case <-time.After(2 * time.Second):
			s.closingError(w, r)
		}
	case rep := <-j.done:
		s.ingestReply(w, r, rep, len(records))
	}
}

// ingestReply writes the worker's verdict: 202 with the new row count
// and generation on success, 503 + Retry-After when the server was
// closing (the batch did not apply and the client should retry against
// the restarted process), 500 otherwise.
func (s *Server) ingestReply(w http.ResponseWriter, r *http.Request, rep ingestReply, accepted int) {
	if errors.Is(rep.err, errServerClosing) {
		s.closingError(w, r)
		return
	}
	if rep.err != nil {
		s.jsonError(w, r, http.StatusInternalServerError, rep.err)
		return
	}
	s.writeJSONStatus(w, http.StatusAccepted, map[string]interface{}{
		"rows_accepted": accepted,
		"row_count":     rep.res.TotalRows,
		"generation":    rep.res.Generation,
	})
}

func (s *Server) closingError(w http.ResponseWriter, r *http.Request) {
	s.ingestRejected.Inc()
	w.Header().Set("Retry-After", "1")
	s.jsonError(w, r, http.StatusServiceUnavailable,
		fmt.Errorf("ingest unavailable: %w", errServerClosing))
}

// parseCSVBatch reads a CSV body whose header names dataset columns
// and returns records normalized to full frame order.
func parseCSVBatch(r io.Reader, names []string) ([][]string, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("ingest: reading CSV header: %w", err)
	}
	var rows [][]string
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("ingest: reading CSV record: %w", err)
		}
		rows = append(rows, rec)
	}
	return normalizeBatch(header, rows, names)
}

// parseJSONBatch reads a JSON body of either row shape and returns
// records normalized to full frame order. Array rows follow the
// "columns" list (the frame's column order when absent); object rows
// key cells by column name directly.
func parseJSONBatch(r io.Reader, names []string) ([][]string, error) {
	var req struct {
		Columns []string          `json:"columns"`
		Rows    []json.RawMessage `json:"rows"`
	}
	if err := json.NewDecoder(r).Decode(&req); err != nil {
		return nil, fmt.Errorf("ingest: decoding JSON body: %w", err)
	}
	byName := indexNames(names)
	var arrays [][]string
	var objects [][]string
	for i, raw := range req.Rows {
		trimmed := strings.TrimSpace(string(raw))
		if strings.HasPrefix(trimmed, "[") {
			var vals []interface{}
			if err := json.Unmarshal(raw, &vals); err != nil {
				return nil, fmt.Errorf("ingest: row %d: %w", i, err)
			}
			cells := make([]string, len(vals))
			for ci, v := range vals {
				cell, err := cellString(v)
				if err != nil {
					return nil, fmt.Errorf("ingest: row %d, cell %d: %w", i, ci, err)
				}
				cells[ci] = cell
			}
			arrays = append(arrays, cells)
			continue
		}
		var obj map[string]interface{}
		if err := json.Unmarshal(raw, &obj); err != nil {
			return nil, fmt.Errorf("ingest: row %d: %w", i, err)
		}
		rec := make([]string, len(names))
		for k, v := range obj {
			ci, ok := byName[k]
			if !ok {
				return nil, fmt.Errorf("ingest: row %d: unknown column %q (dataset has %v)", i, k, names)
			}
			cell, err := cellString(v)
			if err != nil {
				return nil, fmt.Errorf("ingest: row %d, column %q: %w", i, k, err)
			}
			rec[ci] = cell
		}
		objects = append(objects, rec)
	}
	if len(arrays) > 0 && len(objects) > 0 {
		return nil, fmt.Errorf("ingest: mixed array and object rows in one batch")
	}
	if len(arrays) > 0 {
		cols := req.Columns
		if len(cols) == 0 {
			cols = names
		}
		return normalizeBatch(cols, arrays, names)
	}
	return objects, nil
}

// cellString renders one JSON cell value the way frame ingestion
// expects it: null becomes the empty (missing) cell, numbers use %g
// (which float64 round-trips exactly).
func cellString(v interface{}) (string, error) {
	switch x := v.(type) {
	case nil:
		return "", nil
	case string:
		return x, nil
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64), nil
	case bool:
		if x {
			return "true", nil
		}
		return "false", nil
	}
	return "", fmt.Errorf("unsupported cell type %T", v)
}

// normalizeBatch maps rows keyed by cols to full frame-order records
// (unnamed frame columns get missing cells), so every queued batch
// shares one layout and concatenates directly.
func normalizeBatch(cols []string, rows [][]string, names []string) ([][]string, error) {
	byName := indexNames(names)
	pos := make([]int, len(cols))
	seen := make(map[string]bool, len(cols))
	for i, c := range cols {
		c = strings.TrimSpace(c)
		ci, ok := byName[c]
		if !ok {
			return nil, fmt.Errorf("ingest: unknown column %q (dataset has %v)", c, names)
		}
		if seen[c] {
			return nil, fmt.Errorf("ingest: duplicate column %q", c)
		}
		seen[c] = true
		pos[i] = ci
	}
	out := make([][]string, len(rows))
	for ri, row := range rows {
		if len(row) != len(cols) {
			return nil, fmt.Errorf("ingest: row %d has %d cells, want %d", ri, len(row), len(cols))
		}
		rec := make([]string, len(names))
		for i, cell := range row {
			rec[pos[i]] = cell
		}
		out[ri] = rec
	}
	return out, nil
}

func indexNames(names []string) map[string]int {
	m := make(map[string]int, len(names))
	for i, n := range names {
		m[n] = i
	}
	return m
}
