package viz

import (
	"fmt"
	"math"
	"strings"

	"foresight/internal/core"
	"foresight/internal/frame"
	"foresight/internal/stats"
)

// ASCIIHistogram renders a vertical-bar text histogram of values,
// width bars wide (20 when ≤ 0).
func ASCIIHistogram(values []float64, bars int) string {
	if bars <= 0 {
		bars = 20
	}
	h := stats.NewHistogram(values, bars)
	if h.N == 0 {
		return "(no data)\n"
	}
	maxCount := 0
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		width := 0
		if maxCount > 0 {
			width = c * 40 / maxCount
		}
		fmt.Fprintf(&b, "%10s |%s %d\n", fmtNum(h.Edges[i]), strings.Repeat("█", width), c)
	}
	return b.String()
}

// ASCIIBoxPlot renders a one-line box plot with outlier markers.
func ASCIIBoxPlot(values []float64) string {
	bs := stats.NewBoxStats(values, 0)
	if math.IsNaN(bs.Median) {
		return "(no data)\n"
	}
	const width = 60
	lo, hi := bs.Min, bs.Max
	pos := func(v float64) int {
		if hi == lo {
			return width / 2
		}
		p := int((v - lo) / (hi - lo) * float64(width-1))
		if p < 0 {
			p = 0
		}
		if p >= width {
			p = width - 1
		}
		return p
	}
	row := make([]rune, width)
	for i := range row {
		row[i] = ' '
	}
	for i := pos(bs.WhiskerLow); i <= pos(bs.WhiskerHigh); i++ {
		row[i] = '-'
	}
	for i := pos(bs.Q1); i <= pos(bs.Q3); i++ {
		row[i] = '█'
	}
	row[pos(bs.Median)] = '┃'
	for _, v := range bs.Outliers {
		row[pos(v)] = '*'
	}
	return fmt.Sprintf("%s\n%-10s%*s\n", string(row), fmtNum(lo), width-10, fmtNum(hi))
}

// ASCIIScatter renders an x/y scatter on a rows×cols character grid.
func ASCIIScatter(xs, ys []float64, rows, cols int) string {
	if rows <= 0 {
		rows = 16
	}
	if cols <= 0 {
		cols = 48
	}
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for i := 0; i < n; i++ {
		if math.IsNaN(xs[i]) || math.IsNaN(ys[i]) {
			continue
		}
		minX, maxX = math.Min(minX, xs[i]), math.Max(maxX, xs[i])
		minY, maxY = math.Min(minY, ys[i]), math.Max(maxY, ys[i])
	}
	if minX > maxX {
		return "(no data)\n"
	}
	grid := make([][]int, rows)
	for r := range grid {
		grid[r] = make([]int, cols)
	}
	for i := 0; i < n; i++ {
		if math.IsNaN(xs[i]) || math.IsNaN(ys[i]) {
			continue
		}
		c, r := 0, 0
		if maxX > minX {
			c = int((xs[i] - minX) / (maxX - minX) * float64(cols-1))
		}
		if maxY > minY {
			r = int((maxY - ys[i]) / (maxY - minY) * float64(rows-1))
		}
		grid[r][c]++
	}
	marks := []rune(" ·∘○●")
	var b strings.Builder
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			level := grid[r][c]
			if level >= len(marks) {
				level = len(marks) - 1
			}
			b.WriteRune(marks[level])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "x: [%s, %s]  y: [%s, %s]\n", fmtNum(minX), fmtNum(maxX), fmtNum(minY), fmtNum(maxY))
	return b.String()
}

// ASCIIPareto renders sorted category frequencies with cumulative
// shares.
func ASCIIPareto(labels []string, counts []int, maxRows int) string {
	if maxRows <= 0 {
		maxRows = 10
	}
	type lc struct {
		label string
		count int
	}
	items := make([]lc, 0, len(labels))
	total := 0
	for i, l := range labels {
		if i < len(counts) {
			items = append(items, lc{l, counts[i]})
			total += counts[i]
		}
	}
	if total == 0 {
		return "(no data)\n"
	}
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && items[j].count > items[j-1].count; j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
	if len(items) > maxRows {
		items = items[:maxRows]
	}
	var b strings.Builder
	cum := 0.0
	maxCount := items[0].count
	for _, it := range items {
		share := float64(it.count) / float64(total)
		cum += share
		bar := it.count * 30 / maxCount
		fmt.Fprintf(&b, "%-14s |%s %d (%.1f%%, cum %.1f%%)\n",
			truncate(it.label, 14), strings.Repeat("█", bar), it.count, share*100, cum*100)
	}
	return b.String()
}

// ASCIICorrelogram renders the Figure-2 overview as a character grid:
// sign and magnitude buckets per cell.
func ASCIICorrelogram(names []string, matrix [][]float64) string {
	d := len(names)
	var b strings.Builder
	cell := func(v float64) string {
		switch {
		case math.IsNaN(v):
			return " . "
		case v >= 0.75:
			return " ██"
		case v >= 0.5:
			return " ▓▓"
		case v >= 0.25:
			return " ▒▒"
		case v > -0.25:
			return " ··"
		case v > -0.5:
			return " ‐‐"
		case v > -0.75:
			return " ──"
		default:
			return " ━━"
		}
	}
	for i := 0; i < d; i++ {
		fmt.Fprintf(&b, "%-14s", truncate(names[i], 14))
		for j := 0; j < d; j++ {
			v := math.NaN()
			if i < len(matrix) && j < len(matrix[i]) {
				v = matrix[i][j]
			}
			b.WriteString(cell(v))
		}
		b.WriteByte('\n')
	}
	b.WriteString("legend: ██ ≥.75  ▓▓ ≥.5  ▒▒ ≥.25  ·· ≈0  ‐‐ ≤-.25  ── ≤-.5  ━━ ≤-.75\n")
	return b.String()
}

// RenderASCII renders an insight as a text panel for the CLI
// carousel.
func RenderASCII(f *frame.Frame, in core.Insight) (string, error) {
	header := insightTitle(in) + "\n"
	switch in.Vis {
	case core.VisHistogram, core.VisHistogramDensity:
		col, err := f.Numeric(in.Attrs[0])
		if err != nil {
			return "", err
		}
		return header + ASCIIHistogram(col.Values(), 14), nil
	case core.VisBoxPlot:
		col, err := f.Numeric(in.Attrs[0])
		if err != nil {
			return "", err
		}
		return header + ASCIIBoxPlot(col.Values()), nil
	case core.VisPareto, core.VisBar:
		col, err := f.Categorical(in.Attrs[0])
		if err != nil {
			return "", err
		}
		return header + ASCIIPareto(col.Dict(), col.Counts(), 8), nil
	case core.VisScatter, core.VisScatterFit, core.VisColorScatter:
		x, err := f.Numeric(in.Attrs[0])
		if err != nil {
			return "", err
		}
		y, err := f.Numeric(in.Attrs[1])
		if err != nil {
			return "", err
		}
		return header + ASCIIScatter(x.Values(), y.Values(), 14, 44), nil
	case core.VisStrip:
		num, err := f.Numeric(in.Attrs[0])
		if err != nil {
			return "", err
		}
		cat, err := f.Categorical(in.Attrs[1])
		if err != nil {
			return "", err
		}
		// Group means table.
		sums := make([]float64, cat.Cardinality())
		counts := make([]float64, cat.Cardinality())
		for i, code := range cat.Codes() {
			if code >= 0 && !math.IsNaN(num.At(i)) {
				sums[code] += num.At(i)
				counts[code]++
			}
		}
		var b strings.Builder
		b.WriteString(header)
		for g, label := range cat.Dict() {
			if counts[g] > 0 {
				fmt.Fprintf(&b, "%-14s mean %s (n=%d)\n", truncate(label, 14), fmtNum(sums[g]/counts[g]), int(counts[g]))
			}
		}
		return b.String(), nil
	case core.VisMosaic:
		a, err := f.Categorical(in.Attrs[0])
		if err != nil {
			return "", err
		}
		b, err := f.Categorical(in.Attrs[1])
		if err != nil {
			return "", err
		}
		ct := stats.NewContingency(a.Codes(), b.Codes(), a.Cardinality(), b.Cardinality())
		return header + fmt.Sprintf("contingency %dx%d, chi2=%s\n",
			a.Cardinality(), b.Cardinality(), fmtNum(ct.ChiSquare())), nil
	default:
		return header, nil
	}
}
