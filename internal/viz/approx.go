package viz

import (
	"fmt"
	"math"

	"foresight/internal/core"
	"foresight/internal/sketch"
	"foresight/internal/stats"
)

// RenderSVGFromProfile draws an insight's visualization using *only*
// the preprocessed sketch store — no access to the raw columns. This
// is the display-side counterpart of §3: histograms reconstruct from
// KLL CDF differences, box plots from KLL quantiles plus the
// reservoir, Pareto charts from SpaceSaving counters, scatters from
// the shared row sample. Approximate renderings are titled with the
// "~" marker.
func RenderSVGFromProfile(p *sketch.DatasetProfile, in core.Insight) (string, error) {
	in.Approx = true
	title := insightTitle(in)
	switch in.Vis {
	case core.VisHistogram:
		np, err := p.NumericProfileOf(in.Attrs[0])
		if err != nil {
			return "", err
		}
		edges, counts := HistogramFromKLL(np.Quantiles, &np.Moments, 0)
		return histogramBarsSVG(edges, counts, title), nil
	case core.VisHistogramDensity:
		np, err := p.NumericProfileOf(in.Attrs[0])
		if err != nil {
			return "", err
		}
		// The reservoir sample stands in for the raw column.
		return HistogramDensitySVG(np.Sample.Sample(), title), nil
	case core.VisBoxPlot:
		np, err := p.NumericProfileOf(in.Attrs[0])
		if err != nil {
			return "", err
		}
		return boxFromSketchSVG(np, title), nil
	case core.VisPareto, core.VisBar:
		cp, err := p.CategoricalProfileOf(in.Attrs[0])
		if err != nil {
			return "", err
		}
		hits := cp.Heavy.Top(0)
		labels := make([]string, len(hits))
		counts := make([]int, len(hits))
		for i, h := range hits {
			labels[i] = h.Item
			counts[i] = int(h.Count)
		}
		if in.Vis == core.VisBar {
			vals := make([]float64, len(counts))
			for i, c := range counts {
				vals[i] = float64(c)
			}
			return BarSVG(labels, vals, title, 0), nil
		}
		return ParetoSVG(labels, counts, title, 0), nil
	case core.VisScatter, core.VisScatterFit:
		x, err := p.NumericProfileOf(in.Attrs[0])
		if err != nil {
			return "", err
		}
		y, err := p.NumericProfileOf(in.Attrs[1])
		if err != nil {
			return "", err
		}
		var fit *stats.LinearFit
		if in.Vis == core.VisScatterFit {
			lf := stats.FitLine(x.RowSampleValues, y.RowSampleValues)
			fit = &lf
		}
		return ScatterSVG(x.RowSampleValues, y.RowSampleValues, fit, title, 0), nil
	case core.VisStrip:
		num, err := p.NumericProfileOf(in.Attrs[0])
		if err != nil {
			return "", err
		}
		cat, err := p.CategoricalProfileOf(in.Attrs[1])
		if err != nil {
			return "", err
		}
		groups := make([]int, len(cat.RowSampleCodes))
		for i, code := range cat.RowSampleCodes {
			groups[i] = int(code)
		}
		return StripSVG(num.RowSampleValues, groups, cat.Dict, title, 0), nil
	case core.VisMosaic:
		a, err := p.CategoricalProfileOf(in.Attrs[0])
		if err != nil {
			return "", err
		}
		b, err := p.CategoricalProfileOf(in.Attrs[1])
		if err != nil {
			return "", err
		}
		ct := stats.NewContingency(a.RowSampleCodes, b.RowSampleCodes, a.Cardinality, b.Cardinality)
		return MosaicSVG(ct.Counts, a.Dict, b.Dict, title), nil
	case core.VisColorScatter:
		x, err := p.NumericProfileOf(in.Attrs[0])
		if err != nil {
			return "", err
		}
		y, err := p.NumericProfileOf(in.Attrs[1])
		if err != nil {
			return "", err
		}
		z, err := p.CategoricalProfileOf(in.Attrs[2])
		if err != nil {
			return "", err
		}
		groups := make([]int, len(z.RowSampleCodes))
		for i, code := range z.RowSampleCodes {
			groups[i] = int(code)
		}
		return ColorScatterSVG(x.RowSampleValues, y.RowSampleValues, groups, title, 0), nil
	default:
		return "", fmt.Errorf("viz: no sketch renderer for visualization kind %q", in.Vis)
	}
}

// HistogramFromKLL reconstructs an equal-width histogram from a KLL
// sketch: counts are CDF differences across the bin edges, with the
// domain taken from the moments sketch extrema. bins ≤ 0 selects
// ⌈√(stored items)⌉ capped to [8, 64].
func HistogramFromKLL(s *sketch.KLL, m *sketch.Moments, bins int) (edges []float64, counts []float64) {
	if s == nil || s.Count() == 0 {
		return []float64{0, 1}, []float64{0}
	}
	lo, hi := m.Min(), m.Max()
	if math.IsNaN(lo) || math.IsNaN(hi) || lo == hi {
		return []float64{lo, lo + 1}, []float64{float64(s.Count())}
	}
	if bins <= 0 {
		bins = int(math.Sqrt(float64(s.StoredItems())))
		if bins < 8 {
			bins = 8
		}
		if bins > 64 {
			bins = 64
		}
	}
	edges = make([]float64, bins+1)
	counts = make([]float64, bins)
	width := (hi - lo) / float64(bins)
	for i := 0; i <= bins; i++ {
		edges[i] = lo + float64(i)*width
	}
	total := float64(s.Count())
	prev := 0.0
	for i := 1; i <= bins; i++ {
		cum := s.CDF(edges[i]) * total
		counts[i-1] = math.Max(0, cum-prev)
		prev = cum
	}
	return edges, counts
}

// histogramBarsSVG renders pre-binned bars (float counts).
func histogramBarsSVG(edges, counts []float64, title string) string {
	s := newSVG(defaultW, defaultH)
	s.text(defaultW/2, 18, 13, "middle", title)
	if len(counts) == 0 {
		s.text(defaultW/2, defaultH/2, 12, "middle", "no data")
		return s.String()
	}
	maxCount := 0.0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	if maxCount == 0 {
		s.text(defaultW/2, defaultH/2, 12, "middle", "no data")
		return s.String()
	}
	plotW := float64(defaultW) - marginL - marginR
	plotH := float64(defaultH) - marginT - marginB
	y := newScale(0, maxCount, marginT+plotH, marginT)
	binW := plotW / float64(len(counts))
	for i, c := range counts {
		x := marginL + float64(i)*binW
		top := y.at(c)
		s.rect(x+0.5, top, binW-1, marginT+plotH-top, colorPrimary, 0.85)
	}
	s.line(marginL, marginT+plotH, marginL+plotW, marginT+plotH, "#333", 1)
	s.text(marginL, float64(defaultH)-12, 10, "start", fmtNum(edges[0]))
	s.text(marginL+plotW, float64(defaultH)-12, 10, "end", fmtNum(edges[len(edges)-1]))
	s.text(marginL-6, marginT+8, 10, "end", fmtNum(maxCount))
	return s.String()
}

// boxFromSketchSVG renders a box plot from KLL quantiles, moments
// extrema, and reservoir-sampled outliers.
func boxFromSketchSVG(np *sketch.NumericProfile, title string) string {
	s := newSVG(defaultW, 180)
	s.text(defaultW/2, 18, 13, "middle", title)
	qs := np.Quantiles.Quantiles([]float64{0.25, 0.5, 0.75})
	if math.IsNaN(qs[1]) {
		s.text(defaultW/2, 90, 12, "middle", "no data")
		return s.String()
	}
	lo, hi := np.Moments.Min(), np.Moments.Max()
	x := newScale(lo, hi, marginL, float64(defaultW)-marginR)
	iqr := qs[2] - qs[0]
	fenceLo, fenceHi := qs[0]-1.5*iqr, qs[2]+1.5*iqr
	mid := 90.0
	boxH := 44.0
	wLo := math.Max(lo, fenceLo)
	wHi := math.Min(hi, fenceHi)
	s.line(x.at(wLo), mid, x.at(qs[0]), mid, "#333", 1.5)
	s.line(x.at(qs[2]), mid, x.at(wHi), mid, "#333", 1.5)
	s.rect(x.at(qs[0]), mid-boxH/2, x.at(qs[2])-x.at(qs[0]), boxH, colorPrimary, 0.35)
	s.line(x.at(qs[1]), mid-boxH/2, x.at(qs[1]), mid+boxH/2, colorPrimary, 2.5)
	for _, v := range np.Sample.Sample() {
		if v < fenceLo || v > fenceHi {
			s.circle(x.at(v), mid, 3, colorAccent, 0.9)
		}
	}
	s.text(marginL, 160, 10, "start", fmtNum(lo))
	s.text(float64(defaultW)-marginR, 160, 10, "end", fmtNum(hi))
	s.text(x.at(qs[1]), mid-boxH/2-6, 10, "middle", "median "+fmtNum(qs[1]))
	return s.String()
}
