package viz

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"foresight/internal/core"
	"foresight/internal/frame"
	"foresight/internal/sketch"
)

func approxTestProfile(t *testing.T) (*frame.Frame, *sketch.DatasetProfile) {
	t.Helper()
	n := 5000
	rng := rand.New(rand.NewSource(51))
	xs := make([]float64, n)
	ys := make([]float64, n)
	grp := make([]string, n)
	hc := make([]string, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.NormFloat64()
		ys[i] = 0.8*xs[i] + 0.6*rng.NormFloat64()
		grp[i] = []string{"a", "b", "c"}[i%3]
		hc[i] = fmt.Sprintf("h%d", int(math.Abs(rng.NormFloat64())*3))
	}
	xs[7] = 30 // planted outlier
	f := frame.MustNew("apt",
		frame.NewNumericColumn("x", xs),
		frame.NewNumericColumn("y", ys),
		frame.NewCategoricalColumn("g", grp),
		frame.NewCategoricalColumn("h", hc),
	)
	return f, sketch.BuildProfile(f, sketch.ProfileConfig{Seed: 3, K: 64, SampleSize: 4096})
}

func TestRenderSVGFromProfileAllKinds(t *testing.T) {
	_, p := approxTestProfile(t)
	mk := func(vis core.VisKind, attrs ...string) core.Insight {
		return core.Insight{Class: "c", Metric: "m", Attrs: attrs, Score: 0.5, Vis: vis}
	}
	cases := map[string]core.Insight{
		"hist":    mk(core.VisHistogram, "x"),
		"box":     mk(core.VisBoxPlot, "x"),
		"pareto":  mk(core.VisPareto, "h"),
		"bar":     mk(core.VisBar, "g"),
		"scatter": mk(core.VisScatterFit, "x", "y"),
		"plain":   mk(core.VisScatter, "x", "y"),
		"strip":   mk(core.VisStrip, "x", "g"),
		"mosaic":  mk(core.VisMosaic, "g", "h"),
		"color":   mk(core.VisColorScatter, "x", "y", "g"),
	}
	for name, in := range cases {
		svg, err := RenderSVGFromProfile(p, in)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>") {
			t.Errorf("%s: malformed SVG", name)
		}
		// Approx marker in title.
		if !strings.Contains(svg, "~") {
			t.Errorf("%s: approx marker missing", name)
		}
	}
	// Error paths.
	if _, err := RenderSVGFromProfile(p, mk("nope", "x")); err == nil {
		t.Error("unknown kind should error")
	}
	if _, err := RenderSVGFromProfile(p, mk(core.VisHistogram, "missing")); err == nil {
		t.Error("missing column should error")
	}
	if _, err := RenderSVGFromProfile(p, mk(core.VisStrip, "x", "missing")); err == nil {
		t.Error("missing categorical should error")
	}
}

func TestHistogramFromKLLMatchesShape(t *testing.T) {
	f, p := approxTestProfile(t)
	np := p.Numeric["x"]
	edges, counts := HistogramFromKLL(np.Quantiles, &np.Moments, 20)
	if len(edges) != 21 || len(counts) != 20 {
		t.Fatalf("shape: %d edges %d counts", len(edges), len(counts))
	}
	// Total mass ≈ n.
	total := 0.0
	maxIdx := 0
	for i, c := range counts {
		total += c
		if c > counts[maxIdx] {
			maxIdx = i
		}
	}
	col, _ := f.Numeric("x")
	if math.Abs(total-float64(col.Len())) > float64(col.Len())/20 {
		t.Errorf("histogram mass %v, want ≈%d", total, col.Len())
	}
	// Mode should be near 0 for a standard normal (middle bins; the
	// planted outlier at 30 stretches the domain so the normal mass
	// concentrates in the first bins).
	modeCenter := (edges[maxIdx] + edges[maxIdx+1]) / 2
	if math.Abs(modeCenter) > 2 {
		t.Errorf("mode center = %v, want near 0", modeCenter)
	}
}

func TestHistogramFromKLLDegenerate(t *testing.T) {
	edges, counts := HistogramFromKLL(nil, &sketch.Moments{}, 0)
	if len(counts) != 1 || counts[0] != 0 {
		t.Errorf("nil sketch: %v %v", edges, counts)
	}
	// Constant column.
	s := sketch.NewKLL(64, 1)
	var m sketch.Moments
	for i := 0; i < 100; i++ {
		s.Update(5)
		m.Add(5)
	}
	edges, counts = HistogramFromKLL(s, &m, 10)
	if len(counts) != 1 || counts[0] != 100 {
		t.Errorf("constant column: %v %v", edges, counts)
	}
}

func TestBoxFromSketchShowsOutlier(t *testing.T) {
	_, p := approxTestProfile(t)
	in := core.Insight{Class: "outliers", Metric: "meandist", Attrs: []string{"x"}, Vis: core.VisBoxPlot}
	svg, err := RenderSVGFromProfile(p, in)
	if err != nil {
		t.Fatal(err)
	}
	// The planted outlier at 30 should be drawn as an accent circle
	// when it survived in the reservoir (SampleSize=4096 ≥ n, so it did).
	if !strings.Contains(svg, colorAccent) {
		t.Error("outlier marker missing from sketch box plot")
	}
	if !strings.Contains(svg, "median") {
		t.Error("median label missing")
	}
}
