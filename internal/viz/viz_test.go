package viz

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"foresight/internal/core"
	"foresight/internal/frame"
	"foresight/internal/stats"
)

func randVals(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

func assertSVG(t *testing.T, svg string, mustContain ...string) {
	t.Helper()
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>") {
		t.Fatalf("not a complete SVG document: %.80s ... %.40s", svg, svg[len(svg)-40:])
	}
	for _, want := range mustContain {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func TestHistogramSVG(t *testing.T) {
	svg := HistogramSVG(randVals(1000, 1), "my histogram")
	assertSVG(t, svg, "my histogram", "<rect")
	empty := HistogramSVG(nil, "none")
	assertSVG(t, empty, "no data")
}

func TestBoxPlotSVG(t *testing.T) {
	vals := randVals(500, 2)
	vals[0] = 25 // outlier
	svg := BoxPlotSVG(vals, "box")
	assertSVG(t, svg, "box", "median", "<circle")
	assertSVG(t, BoxPlotSVG(nil, "x"), "no data")
}

func TestParetoSVG(t *testing.T) {
	svg := ParetoSVG([]string{"a", "b", "c"}, []int{50, 30, 20}, "pareto", 0)
	assertSVG(t, svg, "pareto", "<rect", "<line")
	assertSVG(t, ParetoSVG(nil, nil, "e", 0), "no data")
	// Labels longer than bars allow are truncated/escaped safely.
	svg2 := ParetoSVG([]string{"<evil&name>"}, []int{5}, "esc", 0)
	if strings.Contains(svg2, "<evil") {
		t.Error("labels must be escaped")
	}
}

func TestScatterSVG(t *testing.T) {
	xs := randVals(800, 3)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2*x + 1
	}
	fit := stats.FitLine(xs, ys)
	svg := ScatterSVG(xs, ys, &fit, "scatter", 200)
	assertSVG(t, svg, "scatter", "<circle")
	// Fit line drawn in accent color.
	if !strings.Contains(svg, colorAccent) {
		t.Error("fit line missing")
	}
	assertSVG(t, ScatterSVG(nil, nil, nil, "e", 0), "no data")
	// NaN-only data.
	nan := []float64{math.NaN(), math.NaN()}
	assertSVG(t, ScatterSVG(nan, nan, nil, "e", 0), "no data")
}

func TestColorScatterSVG(t *testing.T) {
	xs := randVals(300, 4)
	ys := randVals(300, 5)
	groups := make([]int, 300)
	for i := range groups {
		groups[i] = i % 3
	}
	svg := ColorScatterSVG(xs, ys, groups, "colored", 0)
	assertSVG(t, svg, "colored")
	// At least two distinct category colors used.
	if !strings.Contains(svg, categoryColor(0)) || !strings.Contains(svg, categoryColor(1)) {
		t.Error("expected multiple category colors")
	}
}

func TestBarAndStripAndMosaicSVG(t *testing.T) {
	assertSVG(t, BarSVG([]string{"x", "y"}, []float64{3, 1}, "bars", 0), "bars", "<rect")
	assertSVG(t, BarSVG(nil, nil, "none", 0), "no data")

	vals := randVals(400, 6)
	groups := make([]int, 400)
	for i := range groups {
		groups[i] = i % 4
	}
	svg := StripSVG(vals, groups, []string{"g0", "g1", "g2", "g3"}, "strips", 0)
	assertSVG(t, svg, "strips", "<circle")
	assertSVG(t, StripSVG(nil, nil, nil, "x", 0), "no data")

	table := [][]int{{10, 2}, {3, 9}}
	assertSVG(t, MosaicSVG(table, []string{"r0", "r1"}, []string{"c0", "c1"}, "mosaic"), "mosaic", "<rect")
	assertSVG(t, MosaicSVG(nil, nil, nil, "m"), "no data")
}

func TestCorrelogramSVG(t *testing.T) {
	names := []string{"alpha", "beta", "gamma"}
	m := [][]float64{{1, 0.8, -0.5}, {0.8, 1, math.NaN()}, {-0.5, math.NaN(), 1}}
	svg := CorrelogramSVG(names, m, "Figure 2")
	assertSVG(t, svg, "Figure 2", "alpha", "positive", "negative")
	// Both sign colors present (0.8 positive, -0.5 negative).
	if !strings.Contains(svg, colorPositive) || !strings.Contains(svg, colorNegative) {
		t.Error("sign colors missing")
	}
}

func testInsightFrame() (*frame.Frame, map[string]core.Insight) {
	n := 300
	rng := rand.New(rand.NewSource(9))
	xs := make([]float64, n)
	ys := make([]float64, n)
	grp := make([]string, n)
	cat2 := make([]string, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.NormFloat64()
		ys[i] = xs[i] + rng.NormFloat64()*0.2
		grp[i] = []string{"a", "b", "c"}[i%3]
		cat2[i] = []string{"p", "q"}[i%2]
	}
	f := frame.MustNew("vt",
		frame.NewNumericColumn("x", xs),
		frame.NewNumericColumn("y", ys),
		frame.NewCategoricalColumn("g", grp),
		frame.NewCategoricalColumn("h", cat2),
	)
	mk := func(vis core.VisKind, attrs ...string) core.Insight {
		return core.Insight{Class: "c", Metric: "m", Attrs: attrs, Score: 0.5, Vis: vis}
	}
	ins := map[string]core.Insight{
		"hist":    mk(core.VisHistogram, "x"),
		"box":     mk(core.VisBoxPlot, "x"),
		"pareto":  mk(core.VisPareto, "g"),
		"bar":     mk(core.VisBar, "g"),
		"scatter": mk(core.VisScatterFit, "x", "y"),
		"plain":   mk(core.VisScatter, "x", "y"),
		"strip":   mk(core.VisStrip, "x", "g"),
		"mosaic":  mk(core.VisMosaic, "g", "h"),
		"color":   mk(core.VisColorScatter, "x", "y", "g"),
	}
	return f, ins
}

func TestRenderSVGAllKinds(t *testing.T) {
	f, ins := testInsightFrame()
	for name, in := range ins {
		svg, err := RenderSVG(f, in)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		assertSVG(t, svg)
	}
	// Unknown kind.
	if _, err := RenderSVG(f, core.Insight{Vis: "nope", Attrs: []string{"x"}}); err == nil {
		t.Error("unknown vis kind should error")
	}
	// Wrong column kind.
	if _, err := RenderSVG(f, core.Insight{Vis: core.VisHistogram, Attrs: []string{"g"}}); err == nil {
		t.Error("histogram of categorical should error")
	}
	if _, err := RenderSVG(f, core.Insight{Vis: core.VisScatter, Attrs: []string{"x", "g"}}); err == nil {
		t.Error("scatter with categorical should error")
	}
	if _, err := RenderSVG(f, core.Insight{Vis: core.VisColorScatter, Attrs: []string{"x", "y", "y"}}); err == nil {
		t.Error("color scatter with numeric z should error")
	}
}

func TestRenderASCIIAllKinds(t *testing.T) {
	f, ins := testInsightFrame()
	for name, in := range ins {
		out, err := RenderASCII(f, in)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if !strings.Contains(out, "c(") {
			t.Errorf("%s: header missing: %q", name, out)
		}
	}
	if _, err := RenderASCII(f, core.Insight{Vis: core.VisHistogram, Attrs: []string{"g"}}); err == nil {
		t.Error("wrong kind should error")
	}
}

func TestASCIIPrimitives(t *testing.T) {
	vals := randVals(500, 10)
	hist := ASCIIHistogram(vals, 10)
	if strings.Count(hist, "\n") != 10 {
		t.Errorf("histogram rows = %d", strings.Count(hist, "\n"))
	}
	if ASCIIHistogram(nil, 5) != "(no data)\n" {
		t.Error("empty histogram text wrong")
	}
	vals[0] = 30
	box := ASCIIBoxPlot(vals)
	if !strings.Contains(box, "█") || !strings.Contains(box, "*") {
		t.Errorf("box plot missing parts: %q", box)
	}
	if ASCIIBoxPlot(nil) != "(no data)\n" {
		t.Error("empty box text wrong")
	}
	sc := ASCIIScatter(vals, vals, 10, 30)
	if !strings.Contains(sc, "x: [") {
		t.Error("scatter footer missing")
	}
	if ASCIIScatter(nil, nil, 5, 5) != "(no data)\n" {
		t.Error("empty scatter text wrong")
	}
	par := ASCIIPareto([]string{"aa", "bb"}, []int{9, 1}, 5)
	if !strings.Contains(par, "90.0%") {
		t.Errorf("pareto shares wrong: %q", par)
	}
	if ASCIIPareto(nil, nil, 3) != "(no data)\n" {
		t.Error("empty pareto text wrong")
	}
	cg := ASCIICorrelogram([]string{"a", "b"}, [][]float64{{1, -0.9}, {-0.9, 1}})
	if !strings.Contains(cg, "━━") || !strings.Contains(cg, "legend") {
		t.Errorf("correlogram wrong: %q", cg)
	}
}

func TestFmtNumAndHelpers(t *testing.T) {
	cases := map[float64]string{
		math.NaN(): "–",
		0:          "0",
		1234567:    "1.23e+06",
		150:        "150",
		3.14159:    "3.14",
		0.00123:    "0.00123",
	}
	for in, want := range cases {
		if got := fmtNum(in); got != want {
			t.Errorf("fmtNum(%v) = %q, want %q", in, got, want)
		}
	}
	if truncate("hello", 10) != "hello" {
		t.Error("truncate short wrong")
	}
	if got := truncate("verylongname", 6); len(got) > 9 { // 5 bytes + ellipsis rune
		t.Errorf("truncate long = %q", got)
	}
	if clamp(5, 0, 3) != 3 || clamp(-1, 0, 3) != 0 || clamp(2, 0, 3) != 2 {
		t.Error("clamp wrong")
	}
	if j := jitter(42); j < -0.5 || j >= 0.5 {
		t.Errorf("jitter out of range: %v", j)
	}
}

func TestSVGEscaping(t *testing.T) {
	s := newSVG(100, 100)
	s.text(1, 1, 10, "start", `<b>&"x"`)
	out := s.String()
	if strings.Contains(out, "<b>") {
		t.Error("text not escaped")
	}
	if !strings.Contains(out, "&lt;b&gt;") {
		t.Error("escape output missing")
	}
}

func TestReportHTML(t *testing.T) {
	sections := []ReportSection{
		{
			Title:       "linear — ranked by pearson",
			Caption:     "top pairs",
			PanelSVGs:   []string{HistogramSVG(randVals(100, 1), "panel1")},
			PanelLabels: []string{"a, b · pearson = 0.9"},
		},
		{
			Title:     "no-label section",
			PanelSVGs: []string{HistogramSVG(randVals(100, 2), "panel2")},
		},
	}
	html := ReportHTML("My Report", "test: 100 rows", sections)
	for _, want := range []string{
		"<!DOCTYPE html>", "My Report", "test: 100 rows",
		"linear — ranked by pearson", "top pairs", "panel1",
		"a, b · pearson = 0.9", "2 sections", "</html>",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Titles are escaped.
	xss := ReportHTML("<script>", "", nil)
	if strings.Contains(xss, "<script>") {
		t.Error("title not escaped")
	}
	if !strings.Contains(xss, "&lt;script&gt;") {
		t.Error("escaped title missing")
	}
}

func TestHistogramDensitySVG(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	bimodal := make([]float64, 3000)
	for i := range bimodal {
		if i%2 == 0 {
			bimodal[i] = rng.NormFloat64() - 4
		} else {
			bimodal[i] = rng.NormFloat64() + 4
		}
	}
	svg := HistogramDensitySVG(bimodal, "density")
	assertSVG(t, svg, "density", "<rect", "2 modes")
	if !strings.Contains(svg, colorAccent) {
		t.Error("KDE curve missing")
	}
	assertSVG(t, HistogramDensitySVG(nil, "e"), "no data")
}

func TestRenderHistogramDensityKind(t *testing.T) {
	f, _ := testInsightFrame()
	in := core.Insight{Class: "multimodality", Metric: "dip", Attrs: []string{"x"},
		Score: 0.1, Vis: core.VisHistogramDensity}
	svg, err := RenderSVG(f, in)
	if err != nil {
		t.Fatal(err)
	}
	assertSVG(t, svg, "modes")
	txt, err := RenderASCII(f, in)
	if err != nil || !strings.Contains(txt, "multimodality(") {
		t.Errorf("ASCII density render: %v", err)
	}
}
