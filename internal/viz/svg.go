// Package viz renders Foresight's insight visualizations (paper §2.2:
// histogram, box-and-whisker, Pareto chart, scatter with best-fit
// line) and the overview correlogram of Figure 2, as self-contained
// SVG documents and as ASCII panels for terminals. The renderers take
// plain data slices so they stay decoupled from the frame and core
// packages; render.go adapts an (Insight, Frame) pair onto them.
package viz

import (
	"fmt"
	"math"
	"strings"
)

// svgBuilder accumulates SVG elements with a fixed canvas.
type svgBuilder struct {
	w, h int
	b    strings.Builder
}

func newSVG(w, h int) *svgBuilder {
	s := &svgBuilder{w: w, h: h}
	fmt.Fprintf(&s.b,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif">`,
		w, h, w, h)
	s.b.WriteString(`<rect width="100%" height="100%" fill="white"/>`)
	return s
}

func (s *svgBuilder) rect(x, y, w, h float64, fill string, opacity float64) {
	fmt.Fprintf(&s.b, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s" fill-opacity="%.3f"/>`,
		x, y, w, h, fill, opacity)
}

func (s *svgBuilder) line(x1, y1, x2, y2 float64, stroke string, width float64) {
	fmt.Fprintf(&s.b, `<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="%s" stroke-width="%.2f"/>`,
		x1, y1, x2, y2, stroke, width)
}

func (s *svgBuilder) circle(cx, cy, r float64, fill string, opacity float64) {
	fmt.Fprintf(&s.b, `<circle cx="%.2f" cy="%.2f" r="%.2f" fill="%s" fill-opacity="%.3f"/>`,
		cx, cy, r, fill, opacity)
}

func (s *svgBuilder) text(x, y float64, size int, anchor, content string) {
	fmt.Fprintf(&s.b, `<text x="%.2f" y="%.2f" font-size="%d" text-anchor="%s">%s</text>`,
		x, y, size, anchor, escape(content))
}

func (s *svgBuilder) textRotated(x, y float64, size int, angle float64, content string) {
	fmt.Fprintf(&s.b, `<text x="%.2f" y="%.2f" font-size="%d" text-anchor="end" transform="rotate(%.1f %.2f %.2f)">%s</text>`,
		x, y, size, angle, x, y, escape(content))
}

func (s *svgBuilder) String() string {
	return s.b.String() + "</svg>"
}

func escape(t string) string {
	t = strings.ReplaceAll(t, "&", "&amp;")
	t = strings.ReplaceAll(t, "<", "&lt;")
	t = strings.ReplaceAll(t, ">", "&gt;")
	return t
}

// scale maps [lo, hi] → [a, b] linearly; degenerate domains map to
// the midpoint.
type scale struct{ lo, hi, a, b float64 }

func newScale(lo, hi, a, b float64) scale {
	return scale{lo, hi, a, b}
}

func (s scale) at(v float64) float64 {
	if s.hi == s.lo {
		return (s.a + s.b) / 2
	}
	return s.a + (v-s.lo)/(s.hi-s.lo)*(s.b-s.a)
}

// Palette used across charts: a colorblind-safe pair plus accents.
const (
	colorPrimary  = "#4477AA"
	colorAccent   = "#EE6677"
	colorNeutral  = "#BBBBBB"
	colorPositive = "#4477AA"
	colorNegative = "#EE6677"
)

// categoryColor returns a distinct fill for group g.
func categoryColor(g int) string {
	palette := []string{"#4477AA", "#EE6677", "#228833", "#CCBB44", "#66CCEE", "#AA3377", "#BBBBBB", "#000000"}
	if g < 0 {
		return colorNeutral
	}
	return palette[g%len(palette)]
}

// fmtNum renders a number compactly for labels.
func fmtNum(v float64) string {
	if math.IsNaN(v) {
		return "–"
	}
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.3g", v)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.2f", v)
	case av == 0:
		return "0"
	default:
		return fmt.Sprintf("%.3g", v)
	}
}
