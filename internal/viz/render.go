package viz

import (
	"fmt"

	"foresight/internal/core"
	"foresight/internal/frame"
	"foresight/internal/stats"
)

// RenderSVG draws the preferred visualization of an insight against
// its dataset, returning a self-contained SVG document.
func RenderSVG(f *frame.Frame, in core.Insight) (string, error) {
	title := insightTitle(in)
	switch in.Vis {
	case core.VisHistogram:
		col, err := f.Numeric(in.Attrs[0])
		if err != nil {
			return "", err
		}
		return HistogramSVG(col.Values(), title), nil
	case core.VisHistogramDensity:
		col, err := f.Numeric(in.Attrs[0])
		if err != nil {
			return "", err
		}
		return HistogramDensitySVG(col.Values(), title), nil
	case core.VisBoxPlot:
		col, err := f.Numeric(in.Attrs[0])
		if err != nil {
			return "", err
		}
		return BoxPlotSVG(col.Values(), title), nil
	case core.VisPareto:
		col, err := f.Categorical(in.Attrs[0])
		if err != nil {
			return "", err
		}
		return ParetoSVG(col.Dict(), col.Counts(), title, 0), nil
	case core.VisBar:
		col, err := f.Categorical(in.Attrs[0])
		if err != nil {
			return "", err
		}
		counts := col.Counts()
		vals := make([]float64, len(counts))
		for i, c := range counts {
			vals[i] = float64(c)
		}
		return BarSVG(col.Dict(), vals, title, 0), nil
	case core.VisScatterFit, core.VisScatter:
		x, err := f.Numeric(in.Attrs[0])
		if err != nil {
			return "", err
		}
		y, err := f.Numeric(in.Attrs[1])
		if err != nil {
			return "", err
		}
		var fit *stats.LinearFit
		if in.Vis == core.VisScatterFit {
			lf := stats.FitLine(x.Values(), y.Values())
			fit = &lf
		}
		return ScatterSVG(x.Values(), y.Values(), fit, title, 0), nil
	case core.VisStrip:
		num, err := f.Numeric(in.Attrs[0])
		if err != nil {
			return "", err
		}
		cat, err := f.Categorical(in.Attrs[1])
		if err != nil {
			return "", err
		}
		groups := make([]int, cat.Len())
		for i, code := range cat.Codes() {
			groups[i] = int(code)
		}
		return StripSVG(num.Values(), groups, cat.Dict(), title, 0), nil
	case core.VisMosaic:
		a, err := f.Categorical(in.Attrs[0])
		if err != nil {
			return "", err
		}
		b, err := f.Categorical(in.Attrs[1])
		if err != nil {
			return "", err
		}
		ct := stats.NewContingency(a.Codes(), b.Codes(), a.Cardinality(), b.Cardinality())
		return MosaicSVG(ct.Counts, a.Dict(), b.Dict(), title), nil
	case core.VisColorScatter:
		x, err := f.Numeric(in.Attrs[0])
		if err != nil {
			return "", err
		}
		y, err := f.Numeric(in.Attrs[1])
		if err != nil {
			return "", err
		}
		z, err := f.Categorical(in.Attrs[2])
		if err != nil {
			return "", err
		}
		groups := make([]int, z.Len())
		for i, code := range z.Codes() {
			groups[i] = int(code)
		}
		return ColorScatterSVG(x.Values(), y.Values(), groups, title, 0), nil
	default:
		return "", fmt.Errorf("viz: no SVG renderer for visualization kind %q", in.Vis)
	}
}

// insightTitle builds a chart title such as
// "linear(xa, xb): pearson = 0.95".
func insightTitle(in core.Insight) string {
	attrs := ""
	for i, a := range in.Attrs {
		if i > 0 {
			attrs += ", "
		}
		attrs += a
	}
	approx := ""
	if in.Approx {
		approx = "~"
	}
	return fmt.Sprintf("%s(%s): %s %s= %s", in.Class, attrs, in.Metric, approx, fmtNum(in.Score))
}
