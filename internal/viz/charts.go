package viz

import (
	"fmt"
	"math"

	"foresight/internal/stats"
)

// Chart margins shared by the SVG renderers.
const (
	defaultW = 420
	defaultH = 260
	marginL  = 48.0
	marginR  = 14.0
	marginT  = 30.0
	marginB  = 38.0
)

// HistogramSVG renders the histogram of values with an automatic bin
// count (Freedman–Diaconis), titled.
func HistogramSVG(values []float64, title string) string {
	h := stats.AutoHistogram(values, stats.FreedmanDiaconis)
	s := newSVG(defaultW, defaultH)
	s.text(defaultW/2, 18, 13, "middle", title)
	if h.N == 0 {
		s.text(defaultW/2, defaultH/2, 12, "middle", "no data")
		return s.String()
	}
	maxCount := 0
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	plotW := float64(defaultW) - marginL - marginR
	plotH := float64(defaultH) - marginT - marginB
	y := newScale(0, float64(maxCount), marginT+plotH, marginT)
	binW := plotW / float64(len(h.Counts))
	for i, c := range h.Counts {
		x := marginL + float64(i)*binW
		top := y.at(float64(c))
		s.rect(x+0.5, top, binW-1, marginT+plotH-top, colorPrimary, 0.85)
	}
	// Axis labels: min, mid, max of the domain; max count.
	s.line(marginL, marginT+plotH, marginL+plotW, marginT+plotH, "#333", 1)
	s.text(marginL, float64(defaultH)-12, 10, "start", fmtNum(h.Edges[0]))
	s.text(marginL+plotW/2, float64(defaultH)-12, 10, "middle", fmtNum((h.Edges[0]+h.Edges[len(h.Edges)-1])/2))
	s.text(marginL+plotW, float64(defaultH)-12, 10, "end", fmtNum(h.Edges[len(h.Edges)-1]))
	s.text(marginL-6, marginT+8, 10, "end", fmtNum(float64(maxCount)))
	return s.String()
}

// BoxPlotSVG renders a horizontal box-and-whisker plot with outlier
// points (the paper's outlier-insight visualization).
func BoxPlotSVG(values []float64, title string) string {
	b := stats.NewBoxStats(values, 0)
	s := newSVG(defaultW, 180)
	s.text(defaultW/2, 18, 13, "middle", title)
	if math.IsNaN(b.Median) {
		s.text(defaultW/2, 90, 12, "middle", "no data")
		return s.String()
	}
	lo, hi := b.Min, b.Max
	x := newScale(lo, hi, marginL, float64(defaultW)-marginR)
	mid := 90.0
	boxH := 44.0
	// Whiskers.
	s.line(x.at(b.WhiskerLow), mid, x.at(b.Q1), mid, "#333", 1.5)
	s.line(x.at(b.Q3), mid, x.at(b.WhiskerHigh), mid, "#333", 1.5)
	s.line(x.at(b.WhiskerLow), mid-boxH/4, x.at(b.WhiskerLow), mid+boxH/4, "#333", 1.5)
	s.line(x.at(b.WhiskerHigh), mid-boxH/4, x.at(b.WhiskerHigh), mid+boxH/4, "#333", 1.5)
	// Box and median.
	s.rect(x.at(b.Q1), mid-boxH/2, x.at(b.Q3)-x.at(b.Q1), boxH, colorPrimary, 0.35)
	s.line(x.at(b.Median), mid-boxH/2, x.at(b.Median), mid+boxH/2, colorPrimary, 2.5)
	// Outliers.
	for _, v := range b.Outliers {
		s.circle(x.at(v), mid, 3, colorAccent, 0.9)
	}
	s.text(marginL, 160, 10, "start", fmtNum(lo))
	s.text(float64(defaultW)-marginR, 160, 10, "end", fmtNum(hi))
	s.text(x.at(b.Median), mid-boxH/2-6, 10, "middle", "median "+fmtNum(b.Median))
	return s.String()
}

// ParetoSVG renders a Pareto chart (sorted frequency bars plus a
// cumulative-share line) for labeled counts, showing up to maxBars
// bars (12 when ≤ 0).
func ParetoSVG(labels []string, counts []int, title string, maxBars int) string {
	if maxBars <= 0 {
		maxBars = 12
	}
	type lc struct {
		label string
		count int
	}
	items := make([]lc, 0, len(labels))
	total := 0
	for i, l := range labels {
		if i < len(counts) {
			items = append(items, lc{l, counts[i]})
			total += counts[i]
		}
	}
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && items[j].count > items[j-1].count; j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
	shown := items
	if len(shown) > maxBars {
		shown = shown[:maxBars]
	}
	s := newSVG(defaultW, defaultH)
	s.text(defaultW/2, 18, 13, "middle", title)
	if total == 0 || len(shown) == 0 {
		s.text(defaultW/2, defaultH/2, 12, "middle", "no data")
		return s.String()
	}
	plotW := float64(defaultW) - marginL - marginR
	plotH := float64(defaultH) - marginT - marginB
	y := newScale(0, float64(shown[0].count), marginT+plotH, marginT)
	cy := newScale(0, 1, marginT+plotH, marginT)
	barW := plotW / float64(len(shown))
	cum := 0.0
	prevX, prevY := marginL, marginT+plotH
	for i, it := range shown {
		x := marginL + float64(i)*barW
		top := y.at(float64(it.count))
		s.rect(x+1, top, barW-2, marginT+plotH-top, colorPrimary, 0.85)
		cum += float64(it.count) / float64(total)
		cx := x + barW/2
		cyv := cy.at(cum)
		s.line(prevX, prevY, cx, cyv, colorAccent, 1.5)
		s.circle(cx, cyv, 2.2, colorAccent, 1)
		prevX, prevY = cx, cyv
		if barW > 22 {
			s.textRotated(x+barW/2, float64(defaultH)-8, 9, -35, truncate(it.label, 10))
		}
	}
	s.line(marginL, marginT+plotH, marginL+plotW, marginT+plotH, "#333", 1)
	s.text(marginL-6, marginT+8, 10, "end", fmtNum(float64(shown[0].count)))
	return s.String()
}

// ScatterSVG renders an x/y scatter; when fit is non-nil the best-fit
// line is superimposed (the paper's correlation-insight view). Points
// are subsampled to at most maxPoints (1000 when ≤ 0).
func ScatterSVG(xs, ys []float64, fit *stats.LinearFit, title string, maxPoints int) string {
	return scatterImpl(xs, ys, nil, fit, title, maxPoints)
}

// ColorScatterSVG renders a scatter with per-point group colors (the
// segmentation-insight view). groups[i] < 0 renders neutral.
func ColorScatterSVG(xs, ys []float64, groups []int, title string, maxPoints int) string {
	return scatterImpl(xs, ys, groups, nil, title, maxPoints)
}

func scatterImpl(xs, ys []float64, groups []int, fit *stats.LinearFit, title string, maxPoints int) string {
	if maxPoints <= 0 {
		maxPoints = 1000
	}
	s := newSVG(defaultW, defaultH)
	s.text(defaultW/2, 18, 13, "middle", title)
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for i := 0; i < n; i++ {
		if math.IsNaN(xs[i]) || math.IsNaN(ys[i]) {
			continue
		}
		minX = math.Min(minX, xs[i])
		maxX = math.Max(maxX, xs[i])
		minY = math.Min(minY, ys[i])
		maxY = math.Max(maxY, ys[i])
	}
	if minX > maxX {
		s.text(defaultW/2, defaultH/2, 12, "middle", "no data")
		return s.String()
	}
	plotW := float64(defaultW) - marginL - marginR
	plotH := float64(defaultH) - marginT - marginB
	x := newScale(minX, maxX, marginL, marginL+plotW)
	y := newScale(minY, maxY, marginT+plotH, marginT)
	step := 1
	if n > maxPoints {
		step = n / maxPoints
	}
	for i := 0; i < n; i += step {
		if math.IsNaN(xs[i]) || math.IsNaN(ys[i]) {
			continue
		}
		fill := colorPrimary
		if groups != nil && i < len(groups) {
			fill = categoryColor(groups[i])
		}
		s.circle(x.at(xs[i]), y.at(ys[i]), 2.2, fill, 0.55)
	}
	if fit != nil && !math.IsNaN(fit.Slope) {
		y1 := fit.Predict(minX)
		y2 := fit.Predict(maxX)
		s.line(x.at(minX), y.at(clamp(y1, minY, maxY)), x.at(maxX), y.at(clamp(y2, minY, maxY)), colorAccent, 2)
	}
	s.line(marginL, marginT+plotH, marginL+plotW, marginT+plotH, "#333", 1)
	s.line(marginL, marginT, marginL, marginT+plotH, "#333", 1)
	s.text(marginL, float64(defaultH)-12, 10, "start", fmtNum(minX))
	s.text(marginL+plotW, float64(defaultH)-12, 10, "end", fmtNum(maxX))
	s.text(marginL-6, marginT+plotH, 10, "end", fmtNum(minY))
	s.text(marginL-6, marginT+10, 10, "end", fmtNum(maxY))
	return s.String()
}

// BarSVG renders labeled value bars (uniformity / entropy view),
// showing up to maxBars (16 when ≤ 0) in given order.
func BarSVG(labels []string, values []float64, title string, maxBars int) string {
	if maxBars <= 0 {
		maxBars = 16
	}
	n := len(labels)
	if len(values) < n {
		n = len(values)
	}
	if n > maxBars {
		n = maxBars
	}
	s := newSVG(defaultW, defaultH)
	s.text(defaultW/2, 18, 13, "middle", title)
	if n == 0 {
		s.text(defaultW/2, defaultH/2, 12, "middle", "no data")
		return s.String()
	}
	maxV := 0.0
	for i := 0; i < n; i++ {
		if values[i] > maxV {
			maxV = values[i]
		}
	}
	plotW := float64(defaultW) - marginL - marginR
	plotH := float64(defaultH) - marginT - marginB
	y := newScale(0, maxV, marginT+plotH, marginT)
	barW := plotW / float64(n)
	for i := 0; i < n; i++ {
		x := marginL + float64(i)*barW
		if !math.IsNaN(values[i]) {
			top := y.at(values[i])
			s.rect(x+1, top, barW-2, marginT+plotH-top, colorPrimary, 0.85)
		}
		if barW > 22 {
			s.textRotated(x+barW/2, float64(defaultH)-8, 9, -35, truncate(labels[i], 10))
		}
	}
	s.line(marginL, marginT+plotH, marginL+plotW, marginT+plotH, "#333", 1)
	return s.String()
}

// StripSVG renders per-group value strips (dependence-insight view):
// one jittered column of points per category, group means marked.
func StripSVG(values []float64, groups []int, groupLabels []string, title string, maxPoints int) string {
	if maxPoints <= 0 {
		maxPoints = 1200
	}
	s := newSVG(defaultW, defaultH)
	s.text(defaultW/2, 18, 13, "middle", title)
	k := len(groupLabels)
	n := len(values)
	if len(groups) < n {
		n = len(groups)
	}
	if k == 0 || n == 0 {
		s.text(defaultW/2, defaultH/2, 12, "middle", "no data")
		return s.String()
	}
	minV, maxV := math.Inf(1), math.Inf(-1)
	for i := 0; i < n; i++ {
		if !math.IsNaN(values[i]) {
			minV = math.Min(minV, values[i])
			maxV = math.Max(maxV, values[i])
		}
	}
	if minV > maxV {
		s.text(defaultW/2, defaultH/2, 12, "middle", "no data")
		return s.String()
	}
	plotW := float64(defaultW) - marginL - marginR
	plotH := float64(defaultH) - marginT - marginB
	y := newScale(minV, maxV, marginT+plotH, marginT)
	colW := plotW / float64(k)
	sums := make([]float64, k)
	counts := make([]float64, k)
	step := 1
	if n > maxPoints {
		step = n / maxPoints
	}
	for i := 0; i < n; i += step {
		g := groups[i]
		if g < 0 || g >= k || math.IsNaN(values[i]) {
			continue
		}
		cx := marginL + (float64(g)+0.5)*colW + jitter(i)*colW*0.3
		s.circle(cx, y.at(values[i]), 2, categoryColor(g), 0.45)
	}
	for i := 0; i < n; i++ {
		g := groups[i]
		if g >= 0 && g < k && !math.IsNaN(values[i]) {
			sums[g] += values[i]
			counts[g]++
		}
	}
	for g := 0; g < k; g++ {
		cx := marginL + (float64(g)+0.5)*colW
		if counts[g] > 0 {
			mean := sums[g] / counts[g]
			s.line(cx-colW*0.35, y.at(mean), cx+colW*0.35, y.at(mean), "#333", 2)
		}
		if colW > 24 {
			s.textRotated(cx, float64(defaultH)-8, 9, -35, truncate(groupLabels[g], 10))
		}
	}
	s.text(marginL-6, marginT+plotH, 10, "end", fmtNum(minV))
	s.text(marginL-6, marginT+10, 10, "end", fmtNum(maxV))
	return s.String()
}

// MosaicSVG renders a two-way contingency table as a shaded grid (the
// categorical-association view); cell darkness encodes the joint
// frequency.
func MosaicSVG(table [][]int, rowLabels, colLabels []string, title string) string {
	s := newSVG(defaultW, defaultH)
	s.text(defaultW/2, 18, 13, "middle", title)
	r := len(table)
	c := 0
	total := 0
	maxCell := 0
	for _, row := range table {
		if len(row) > c {
			c = len(row)
		}
		for _, v := range row {
			total += v
			if v > maxCell {
				maxCell = v
			}
		}
	}
	if r == 0 || c == 0 || total == 0 {
		s.text(defaultW/2, defaultH/2, 12, "middle", "no data")
		return s.String()
	}
	plotW := float64(defaultW) - marginL - marginR
	plotH := float64(defaultH) - marginT - marginB
	cellW := plotW / float64(c)
	cellH := plotH / float64(r)
	for i := 0; i < r; i++ {
		for j := 0; j < c && j < len(table[i]); j++ {
			opacity := 0.05
			if maxCell > 0 {
				opacity = 0.05 + 0.9*float64(table[i][j])/float64(maxCell)
			}
			s.rect(marginL+float64(j)*cellW+0.5, marginT+float64(i)*cellH+0.5,
				cellW-1, cellH-1, colorPrimary, opacity)
		}
		if i < len(rowLabels) && cellH > 12 {
			s.text(marginL-4, marginT+float64(i)*cellH+cellH/2+3, 9, "end", truncate(rowLabels[i], 8))
		}
	}
	for j := 0; j < c && j < len(colLabels); j++ {
		if cellW > 20 {
			s.textRotated(marginL+float64(j)*cellW+cellW/2, float64(defaultH)-8, 9, -35, truncate(colLabels[j], 8))
		}
	}
	return s.String()
}

// CorrelogramSVG renders Figure 2: a symmetric attribute×attribute
// grid where each cell holds a circle whose radius and color encode
// the correlation magnitude and sign. NaN cells stay empty.
func CorrelogramSVG(names []string, matrix [][]float64, title string) string {
	d := len(names)
	labelSpace := 86.0
	cell := 22.0
	if d > 30 {
		cell = 14
	}
	w := int(labelSpace + cell*float64(d) + 20)
	h := int(labelSpace + cell*float64(d) + 40)
	s := newSVG(w, h)
	s.text(float64(w)/2, 18, 13, "middle", title)
	x0, y0 := labelSpace, labelSpace
	for i := 0; i < d; i++ {
		// Row and column labels.
		s.text(x0-5, y0+float64(i)*cell+cell/2+3, 9, "end", truncate(names[i], 12))
		s.textRotated(x0+float64(i)*cell+cell/2+3, y0-5, 9, -55, truncate(names[i], 12))
		for j := 0; j < d; j++ {
			if i >= len(matrix) || j >= len(matrix[i]) {
				continue
			}
			v := matrix[i][j]
			if math.IsNaN(v) {
				continue
			}
			mag := math.Abs(v)
			if mag > 1 {
				mag = 1
			}
			color := colorPositive
			if v < 0 {
				color = colorNegative
			}
			s.circle(x0+float64(j)*cell+cell/2, y0+float64(i)*cell+cell/2,
				mag*cell*0.42, color, 0.25+0.7*mag)
		}
	}
	// Legend.
	ly := float64(h) - 14
	s.circle(x0, ly, 7, colorPositive, 0.8)
	s.text(x0+12, ly+4, 10, "start", "positive")
	s.circle(x0+90, ly, 7, colorNegative, 0.8)
	s.text(x0+102, ly+4, 10, "start", "negative")
	s.text(x0+190, ly+4, 10, "start", "size & intensity = |value|")
	return s.String()
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func truncate(t string, n int) string {
	if len(t) <= n {
		return t
	}
	return t[:n-1] + "…"
}

// jitter returns a deterministic pseudo-random offset in [-0.5, 0.5)
// from an index, for strip plots.
func jitter(i int) float64 {
	x := uint64(i)*0x9E3779B97F4A7C15 + 0x123456789
	x ^= x >> 33
	return float64(x%1000)/1000 - 0.5
}

// HistogramDensitySVG renders a histogram with a Gaussian-KDE density
// curve overlaid (Silverman bandwidth) — the multimodality-insight
// view, where the smooth curve makes the modes visible.
func HistogramDensitySVG(values []float64, title string) string {
	h := stats.AutoHistogram(values, stats.FreedmanDiaconis)
	s := newSVG(defaultW, defaultH)
	s.text(defaultW/2, 18, 13, "middle", title)
	if h.N == 0 {
		s.text(defaultW/2, defaultH/2, 12, "middle", "no data")
		return s.String()
	}
	plotW := float64(defaultW) - marginL - marginR
	plotH := float64(defaultH) - marginT - marginB
	// Bars drawn against density scale so the KDE curve shares the axis.
	dens := h.Densities()
	maxDens := 0.0
	for _, d := range dens {
		if d > maxDens {
			maxDens = d
		}
	}
	kde := stats.NewKDE(values, 0)
	gx, gd := kde.Grid(160)
	for _, d := range gd {
		if d > maxDens {
			maxDens = d
		}
	}
	if maxDens == 0 {
		maxDens = 1
	}
	x := newScale(h.Edges[0], h.Edges[len(h.Edges)-1], marginL, marginL+plotW)
	y := newScale(0, maxDens, marginT+plotH, marginT)
	binW := plotW / float64(len(h.Counts))
	for i, d := range dens {
		px := marginL + float64(i)*binW
		top := y.at(d)
		s.rect(px+0.5, top, binW-1, marginT+plotH-top, colorPrimary, 0.55)
	}
	// KDE polyline.
	prevX, prevY := -1.0, 0.0
	for i := range gx {
		cx := x.at(gx[i])
		cy := y.at(gd[i])
		if cx < marginL || cx > marginL+plotW {
			prevX = -1
			continue
		}
		if prevX >= 0 {
			s.line(prevX, prevY, cx, cy, colorAccent, 2)
		}
		prevX, prevY = cx, cy
	}
	s.line(marginL, marginT+plotH, marginL+plotW, marginT+plotH, "#333", 1)
	s.text(marginL, float64(defaultH)-12, 10, "start", fmtNum(h.Edges[0]))
	s.text(marginL+plotW, float64(defaultH)-12, 10, "end", fmtNum(h.Edges[len(h.Edges)-1]))
	s.text(float64(defaultW)-marginR, marginT+8, 10, "end",
		fmt.Sprintf("%d modes", kde.ModeCount(0)))
	return s.String()
}
