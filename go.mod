module foresight

go 1.22
