// Benchmarks mirroring the paper's evaluation, one per experiment in
// DESIGN.md §5 (E1–E8) plus ablation micro-benchmarks for the sketch
// parameters. The full parameter sweeps with paper-scale sizes live in
// cmd/foresight-bench; these benchmarks use moderate sizes so the
// whole suite runs in minutes on one core.
package foresight_test

import (
	"fmt"
	"io"
	"math/rand"
	"testing"

	"foresight"
	"foresight/internal/bench"
	"foresight/internal/core"
	"foresight/internal/datagen"
	"foresight/internal/query"
	"foresight/internal/sketch"
	"foresight/internal/stats"
)

// --- E1 / Figure 1: carousel generation ---

func BenchmarkE1Carousels(b *testing.B) {
	f := datagen.OECD(0, 42)
	engine, err := query.NewEngine(f, core.NewRegistry(), nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Carousels(5, false); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E2 / Figure 2: overview heat map ---

func BenchmarkE2Overview(b *testing.B) {
	f := datagen.OECD(0, 42)
	engine, err := query.NewEngine(f, core.NewRegistry(), nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ov, err := engine.Overview("linear", "", false)
		if err != nil {
			b.Fatal(err)
		}
		_ = foresight.CorrelogramSVG(ov, "bench")
	}
}

// --- E3: sketch estimator accuracy (measured as throughput here;
// accuracy numbers come from cmd/foresight-bench / the E3 test) ---

func BenchmarkE3HyperplaneEstimate(b *testing.B) {
	f := datagen.Scalable(datagen.ScalableConfig{Rows: 20000, NumericCols: 2, Seed: 1})
	p := sketch.BuildProfile(f, sketch.ProfileConfig{K: 256, Seed: 1})
	names := f.Names()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.EstimatePearson(names[0], names[1]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE3ExactPearson(b *testing.B) {
	f := datagen.Scalable(datagen.ScalableConfig{Rows: 20000, NumericCols: 2, Seed: 1})
	x := f.NumericColumns()[0].Values()
	y := f.NumericColumns()[1].Values()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.Pearson(x, y)
	}
}

// --- E4: preprocessing, exact vs sketch ---

func BenchmarkE4PreprocessExact(b *testing.B) {
	f := datagen.Scalable(datagen.ScalableConfig{Rows: 10000, NumericCols: 50, Seed: 2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = bench.BuildExactStore(f, false)
	}
}

func BenchmarkE4PreprocessSketch(b *testing.B) {
	f := datagen.Scalable(datagen.ScalableConfig{Rows: 10000, NumericCols: 50, Seed: 2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sketch.BuildProfile(f, sketch.ProfileConfig{K: 64, Seed: 1})
	}
}

// --- E5: interactive query latency over a preprocessed store ---

func newE5Engine(b *testing.B) *query.Engine {
	b.Helper()
	f := datagen.Scalable(datagen.ScalableConfig{Rows: 20000, NumericCols: 64, CatCols: 3, Seed: 3})
	p := sketch.BuildProfile(f, sketch.ProfileConfig{K: 64, Seed: 3, Spearman: true})
	engine, err := query.NewEngine(f, core.NewRegistry(), p)
	if err != nil {
		b.Fatal(err)
	}
	return engine
}

func BenchmarkE5CarouselsApprox(b *testing.B) {
	engine := newE5Engine(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Execute(query.Query{K: 5, Approx: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE5FixedAttrQuery(b *testing.B) {
	engine := newE5Engine(b)
	fixed := engine.Frame().NumericColumns()[0].Name()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := engine.Execute(query.Query{Classes: []string{"linear"}, Fixed: []string{fixed}, K: 10, Approx: true})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE5RangeFilterQuery(b *testing.B) {
	engine := newE5Engine(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := engine.Execute(query.Query{Classes: []string{"linear"}, MinScore: 0.3, MaxScore: 0.6, Approx: true})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE5NeighborhoodQuery(b *testing.B) {
	engine := newE5Engine(b)
	top, err := engine.Execute(query.Query{Classes: []string{"linear"}, K: 1, Approx: true})
	if err != nil || len(top) == 0 {
		b.Fatal("no focus insight")
	}
	focus := top[0].Insights[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Neighborhood(focus, []string{"linear"}, 10, true); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E6: all-pairs correlation, exact O(d²n) vs sketch O(d²k) ---

func BenchmarkE6AllPairsExact(b *testing.B) {
	f := datagen.Scalable(datagen.ScalableConfig{Rows: 20000, NumericCols: 48, Seed: 4})
	engine, err := query.NewEngine(f, core.NewRegistry(), nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Overview("linear", "", false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE6AllPairsSketch(b *testing.B) {
	f := datagen.Scalable(datagen.ScalableConfig{Rows: 20000, NumericCols: 48, Seed: 4})
	p := sketch.BuildProfile(f, sketch.ProfileConfig{K: 64, Seed: 4})
	engine, err := query.NewEngine(f, core.NewRegistry(), p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Overview("linear", "", true); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E7: the scripted usage scenario end to end ---

func BenchmarkE7Scenario(b *testing.B) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunE7Scenario(io.Discard, "", 42); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E8: demo-dataset insight extraction ---

func BenchmarkE8IMDBCarousels(b *testing.B) {
	f := datagen.IMDB(0, 7)
	engine, err := query.NewEngine(f, core.NewRegistry(), nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Carousels(1, false); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation micro-benchmarks: per-sketch costs ---

func BenchmarkSketchKLLUpdate(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := sketch.NewKLL(200, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Update(rng.NormFloat64())
	}
}

func BenchmarkSketchSpaceSavingUpdate(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	z := rand.NewZipf(rng, 1.3, 1, 9999)
	items := make([]string, 4096)
	for i := range items {
		items[i] = fmt.Sprintf("item%d", z.Uint64())
	}
	s := sketch.NewSpaceSaving(128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Update(items[i&4095])
	}
}

func BenchmarkSketchKMVUpdate(b *testing.B) {
	items := make([]string, 4096)
	for i := range items {
		items[i] = fmt.Sprintf("key-%d", i)
	}
	s := sketch.NewKMV(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Update(items[i&4095])
	}
}

func BenchmarkSketchMomentsAdd(b *testing.B) {
	var m sketch.Moments
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 4096)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Add(vals[i&4095])
	}
}

func BenchmarkProjectColumns(b *testing.B) {
	for _, k := range []int{32, 128, 512} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			n := 10000
			col := make([]float64, n)
			for i := range col {
				col[i] = rng.NormFloat64()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = sketch.ProjectColumn(col, 0, sketch.ProjectConfig{K: k, Seed: 1})
			}
		})
	}
}

func BenchmarkHyperplaneHamming(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	col := make([]float64, 2000)
	for i := range col {
		col[i] = rng.NormFloat64()
	}
	p := sketch.ProjectColumn(col, 0, sketch.ProjectConfig{K: 512, Seed: 1})
	h1 := sketch.HyperplaneFromProjection(p)
	h2 := sketch.HyperplaneFromProjection(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h1.Hamming(h2)
	}
}

func BenchmarkStatsDip(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 2048)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.Dip(vals)
	}
}

func BenchmarkStatsSpearman(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 10000
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = x[i] + rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.Spearman(x, y)
	}
}

// --- Scoring cache: repeated-query serving (ISSUE 1 tentpole) ---

func newCacheBenchEngine(b *testing.B) *query.Engine {
	b.Helper()
	f := datagen.Scalable(datagen.ScalableConfig{Rows: 4000, NumericCols: 24, CatCols: 3, Seed: 12})
	engine, err := query.NewEngine(f, core.NewRegistry(), nil)
	if err != nil {
		b.Fatal(err)
	}
	return engine
}

// BenchmarkQueryCold scores every candidate from scratch on each
// request (memo disabled): the pre-cache serving cost.
func BenchmarkQueryCold(b *testing.B) {
	engine := newCacheBenchEngine(b)
	engine.SetCacheEnabled(false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Carousels(5, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryCached serves the same request from the memo: only
// filtering and top-k ranking remain on the hot path.
func BenchmarkQueryCached(b *testing.B) {
	engine := newCacheBenchEngine(b)
	if _, err := engine.Carousels(5, false); err != nil { // warm the memo
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Carousels(5, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOverviewCached measures the Figure-2 heat map served from
// the memo (cold cost is BenchmarkE2Overview/E6AllPairsExact).
func BenchmarkOverviewCached(b *testing.B) {
	engine := newCacheBenchEngine(b)
	if _, err := engine.Overview("linear", "", false); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Overview("linear", "", false); err != nil {
			b.Fatal(err)
		}
	}
}

// --- TopK: bounded min-heap vs full sort ---

func benchInsights(n int, seed int64) []core.Insight {
	rng := rand.New(rand.NewSource(seed))
	ins := make([]core.Insight, n)
	for i := range ins {
		ins[i] = core.Insight{
			Class:  "linear",
			Metric: "pearson",
			Attrs:  []string{fmt.Sprintf("x%05d", i), fmt.Sprintf("y%05d", rng.Intn(n))},
			Score:  rng.Float64(),
		}
	}
	return ins
}

func BenchmarkTopKHeap(b *testing.B) {
	for _, n := range []int{1000, 20000} {
		b.Run(fmt.Sprintf("n=%d/k=10", n), func(b *testing.B) {
			ins := benchInsights(n, int64(n))
			buf := make([]core.Insight, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(buf, ins)
				_ = core.TopK(buf, 10)
			}
		})
	}
}

// BenchmarkTopKSort is the pre-heap baseline: sort everything, slice
// off the head.
func BenchmarkTopKSort(b *testing.B) {
	for _, n := range []int{1000, 20000} {
		b.Run(fmt.Sprintf("n=%d/k=10", n), func(b *testing.B) {
			ins := benchInsights(n, int64(n))
			buf := make([]core.Insight, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(buf, ins)
				core.SortInsights(buf)
				_ = buf[:10]
			}
		})
	}
}
