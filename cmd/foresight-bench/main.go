// Command foresight-bench regenerates the paper's evaluation: every
// figure (E1, E2), every quantified claim (E3 accuracy, E4
// preprocessing speedup, E5 interactive latency, E6 all-pairs
// complexity), the §4.1 usage scenario (E7), the §4.2 demo datasets
// (E8), the memoized-cache serving experiment (E9), the
// observability-overhead guardrail (E10), the request-cancellation
// experiment (E11), the streaming-ingest experiment (E12), the
// sharded-parallel-build experiment (E13), the insight-telemetry
// overhead experiment (E14), the top-k pruning experiment (E16), the
// durable-ingest experiment (E17), and the sketch-parameter
// ablations.
// Results print to stdout and, with -out, land as TSV/SVG artifacts.
//
// Usage:
//
//	foresight-bench                 # everything, moderate sizes
//	foresight-bench -exp e3,e4      # selected experiments
//	foresight-bench -full -out results   # paper-scale sizes (slower)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"foresight/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiments: e1,e2,e3,e4,e5,e6,e7,e8,e9,e10,e11,e12,e13,e14,e16,e17,ablations")
	out := flag.String("out", "", "directory for TSV/SVG artifacts (empty = stdout only)")
	full := flag.Bool("full", false, "paper-scale sizes (n=100K, d up to 200; slower)")
	seed := flag.Int64("seed", 42, "experiment seed")
	k := flag.Int("k", 64, "hyperplane sketch width for E4-E6")
	flag.Parse()

	want := map[string]bool{}
	for _, e := range strings.Split(strings.ToLower(*exp), ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	w := os.Stdout

	rows3, dims3 := 20000, []int{25, 50}
	rows4, dims4 := 20000, []int{50, 100}
	rows5, dims5 := 30000, 100
	dims6, rows6 := 64, []int{5000, 10000, 20000, 40000}
	if *full {
		rows3, dims3 = 100000, []int{25, 50, 100, 200}
		rows4, dims4 = 100000, []int{50, 100, 200}
		rows5, dims5 = 100000, 200
		dims6, rows6 = 100, []int{10000, 25000, 50000, 100000}
	}

	start := time.Now()
	run := func(name string, fn func() error) {
		if !all && !want[name] {
			return
		}
		fmt.Fprintf(w, "\n######## %s ########\n", strings.ToUpper(name))
		t0 := time.Now()
		if err := fn(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Fprintf(w, "[%s finished in %v]\n", name, time.Since(t0).Round(time.Millisecond))
	}

	run("e1", func() error { return bench.RunE1Carousels(w, *out, 5, *seed) })
	run("e2", func() error { return bench.RunE2Overview(w, *out, *seed) })
	run("e3", func() error {
		return bench.RunE3Accuracy(w, *out, bench.E3Config{Rows: rows3, Dims: dims3, Seed: *seed})
	})
	run("e4", func() error {
		return bench.RunE4Preprocess(w, *out, bench.E4Config{Rows: rows4, Dims: dims4, K: *k, Seed: *seed})
	})
	run("e5", func() error {
		return bench.RunE5QueryLatency(w, *out, bench.E5Config{Rows: rows5, Dims: dims5, K: *k, Seed: *seed})
	})
	run("e6", func() error {
		return bench.RunE6AllPairs(w, *out, bench.E6Config{Dims: dims6, RowsSet: rows6, K: *k, Seed: *seed})
	})
	run("e7", func() error {
		checks, err := bench.RunE7Scenario(w, *out, *seed)
		if err != nil {
			return err
		}
		failed := 0
		for _, c := range checks {
			if !c.Pass {
				failed++
			}
		}
		if failed > 0 {
			return fmt.Errorf("%d scenario checks failed", failed)
		}
		return nil
	})
	run("e8", func() error { return bench.RunE8DemoDatasets(w, *out, *seed) })
	run("e9", func() error {
		rows9, dims9 := 20000, 32
		if *full {
			rows9, dims9 = 100000, 64
		}
		return bench.RunE9CacheServing(w, *out, bench.E9Config{Rows: rows9, Dims: dims9, Seed: *seed})
	})
	run("e10", func() error {
		rows10, dims10 := 20000, 32
		if *full {
			rows10, dims10 = 100000, 64
		}
		return bench.RunE10ObsOverhead(w, *out, bench.E10Config{Rows: rows10, Dims: dims10, Seed: *seed})
	})
	run("e11", func() error {
		rows11, dims11 := 20000, 32
		if *full {
			rows11, dims11 = 100000, 64
		}
		return bench.RunE11Cancellation(w, *out, bench.E11Config{Rows: rows11, Dims: dims11, Seed: *seed})
	})
	run("e12", func() error {
		c := bench.E12Config{BaseRows: 20000, BatchRows: 2000, Batches: 8, Dims: 16, Seed: *seed}
		if *full {
			c = bench.E12Config{BaseRows: 100000, BatchRows: 10000, Batches: 8, Dims: 32, Seed: *seed}
		}
		return bench.RunE12Ingest(w, *out, c)
	})
	run("e13", func() error {
		c := bench.E13Config{Rows: 30000, Dims: 24, Seed: *seed}
		if *full {
			c = bench.E13Config{Rows: 100000, Dims: 64, Seed: *seed}
		}
		return bench.RunE13ShardedBuild(w, *out, c)
	})
	run("e14", func() error {
		rows14, dims14 := 20000, 32
		if *full {
			rows14, dims14 = 100000, 64
		}
		return bench.RunE14TelemetryOverhead(w, *out, bench.E14Config{Rows: rows14, Dims: dims14, Seed: *seed})
	})
	run("e16", func() error {
		return bench.RunE16Pruning(w, *out, bench.E16Config{K: 3, Seed: *seed})
	})
	run("e17", func() error {
		c := bench.E17Config{BaseRows: 20000, BatchRows: 2000, Batches: 8, Dims: 8, Seed: *seed}
		if *full {
			c = bench.E17Config{BaseRows: 100000, BatchRows: 10000, Batches: 8, Dims: 16, Seed: *seed}
		}
		return bench.RunE17Durable(w, *out, c)
	})
	run("ablations", func() error { return bench.RunAllAblations(w, *out, *seed) })

	fmt.Fprintf(w, "\nall experiments finished in %v\n", time.Since(start).Round(time.Millisecond))
}
