package main

import (
	"strings"
	"testing"

	"foresight/internal/obs/telemetry"
)

func sampleSnapshot() telemetry.Snapshot {
	return telemetry.Snapshot{
		Generation:        3,
		CurrentGeneration: 3,
		Resets:            1,
		TotalQueries:      42,
		ScoreRankError:    0.03125,
		Classes: []telemetry.ClassSnapshot{
			{
				Class:      "linear",
				Queries:    40,
				Candidates: 4000,
				Pruned:     3100,
				Filtered:   700,
				Emitted:    200,
				ScoreCount: 4000,
				Quantiles:  map[string]float64{"p50": 0.41, "p90": 0.77, "p99": 0.93},
				HotColumns: []telemetry.HotItem{
					{Item: "life_expectancy", Count: 120},
					{Item: "gdp_per_capita", Count: 90},
				},
				HotTuples: []telemetry.HotItem{{Item: "gdp_per_capita|life_expectancy", Count: 60}},
				Margins: []telemetry.MarginPoint{
					{Generation: 3, Margin: 0.01},
					{Generation: 3, Margin: 0.05},
					{Generation: 3, Margin: 0.02},
				},
			},
			{Class: "outlier", Queries: 2},
		},
		RecentQueries: []telemetry.QueryRecord{
			{Op: "carousels", Generation: 3, DurationMS: 1.25, Classes: 4, Candidates: 400, Emitted: 20, MinMargin: 0.0123},
			{Op: "execute", Generation: 3, DurationMS: 0.4, Classes: 1, Candidates: 100, Emitted: 5, MinMargin: -1},
		},
	}
}

func sampleStats() topStats {
	s := topStats{Workers: 8, UptimeS: 3923}
	s.Cache.Hits, s.Cache.Misses, s.Cache.Entries = 100, 10, 55
	s.Build = map[string]any{"version": "v1.2.3"}
	return s
}

func TestRenderTop(t *testing.T) {
	out := renderTop(sampleSnapshot(), sampleStats(), 5)
	for _, want := range []string{
		"v1.2.3",
		"up 1h5m23s",
		"workers=8",
		"gen=3 [live]",
		"queries=42",
		"resets=1",
		"ε=±0.031",
		"PRUNED", "FILTERED",
		"3100", "700", // pruned (never scored) vs filtered (scored, dropped)
		"linear",
		"0.410", "0.770", "0.930", // p50/p90/p99
		"life_expectancy(120)",
		"gdp_per_capita(90)",
		"RECENT QUERIES (last 2 of 2)",
		"carousels",
		"0.0123", // finite min margin
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dashboard missing %q in:\n%s", want, out)
		}
	}
	// The outlier class has no scores yet: quantiles render as dashes,
	// and the untruncated execute query's margin renders as a dash.
	if !strings.Contains(out, "—") {
		t.Errorf("no placeholder dashes rendered:\n%s", out)
	}
}

func TestRenderTopStale(t *testing.T) {
	snap := sampleSnapshot()
	snap.Stale = true
	snap.CurrentGeneration = 5
	out := renderTop(snap, sampleStats(), 5)
	if !strings.Contains(out, "STALE (sketches gen 3, engine gen 5)") {
		t.Errorf("staleness not surfaced:\n%s", out)
	}
}

func TestRenderTopEmpty(t *testing.T) {
	out := renderTop(telemetry.Snapshot{}, topStats{}, 5)
	if !strings.Contains(out, "no insight telemetry yet") {
		t.Errorf("empty snapshot not handled:\n%s", out)
	}
}

func TestRenderTopHonorsTopN(t *testing.T) {
	out := renderTop(sampleSnapshot(), sampleStats(), 1)
	if strings.Contains(out, "gdp_per_capita(90)") {
		t.Errorf("top=1 still rendered the second hot column:\n%s", out)
	}
	if !strings.Contains(out, "life_expectancy(120)") {
		t.Errorf("top=1 dropped the first hot column:\n%s", out)
	}
}

func TestSparkline(t *testing.T) {
	if got := sparkline(nil); got != "" {
		t.Errorf("sparkline(nil) = %q", got)
	}
	if got := sparkline([]float64{1, 1, 1}); got != "▅▅▅" {
		t.Errorf("flat sparkline = %q", got)
	}
	got := sparkline([]float64{0, 0.5, 1})
	if []rune(got)[0] != '▁' || []rune(got)[2] != '█' {
		t.Errorf("sparkline extremes = %q", got)
	}
}
