package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"foresight"
)

// runReport implements `foresight report`: a self-contained HTML
// report with one carousel per insight class plus the overview
// correlogram — the shareable offline form of the demo UI.
func runReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	data := fs.String("data", "", "CSV path or demo dataset name")
	out := fs.String("out", "foresight-report.html", "output HTML path")
	k := fs.Int("k", 4, "insights per class")
	approx := fs.Bool("approx", false, "build panels from sketches only")
	seed := fs.Int64("seed", 42, "seed for demo datasets / sketches")
	_ = fs.Parse(args)
	f, err := loadData(*data, *seed)
	if err != nil {
		return err
	}
	engine, err := newEngine(f, *approx, *seed)
	if err != nil {
		return err
	}
	carousels, err := engine.Carousels(*k, *approx)
	if err != nil {
		return err
	}
	var sections []foresight.ReportSection
	for _, r := range carousels {
		sec := foresight.ReportSection{
			Title: fmt.Sprintf("%s — ranked by %s", r.Class, r.Metric),
		}
		for _, in := range r.Insights {
			var svg string
			var rerr error
			if *approx {
				svg, rerr = foresight.RenderSVGFromProfile(engine.Profile(), in)
			} else {
				svg, rerr = foresight.RenderSVG(f, in)
			}
			if rerr != nil {
				continue
			}
			sec.PanelSVGs = append(sec.PanelSVGs, svg)
			sec.PanelLabels = append(sec.PanelLabels,
				fmt.Sprintf("%s · %s = %.3f", strings.Join(in.Attrs, ", "), in.Metric, in.Score))
		}
		if len(sec.PanelSVGs) > 0 {
			sections = append(sections, sec)
		}
	}
	// Overview correlogram (Figure 2).
	if ov, err := engine.Overview("linear", "", *approx); err == nil {
		sections = append(sections, foresight.ReportSection{
			Title:     "overview — all pairwise correlations",
			Caption:   "circle size and intensity encode |rho|; blue positive, red negative",
			PanelSVGs: []string{foresight.CorrelogramSVG(ov, "pairwise correlations")},
		})
	}
	html := foresight.ReportHTML(
		"Foresight insight report",
		f.Summary(),
		sections,
	)
	if err := os.WriteFile(*out, []byte(html), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d sections)\n", *out, len(sections))
	return nil
}

// runProfile implements `foresight profile`: build and persist a
// sketch store, optionally partitioned.
func runProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	data := fs.String("data", "", "CSV path or demo dataset name")
	out := fs.String("out", "", "output profile path")
	k := fs.Int("k", 0, "hyperplane directions (0 = log²n)")
	parts := fs.Int("parts", 1, "row partitions (demonstrates mergeable sketches)")
	shards := fs.Int("shards", 0, "parallel build shards (0 = sequential, <0 = GOMAXPROCS); mutually exclusive with -parts")
	spearman := fs.Bool("spearman", true, "build rank projections for Spearman estimates")
	workers := fs.Int("workers", 1, "parallel workers")
	seed := fs.Int64("seed", 42, "seed")
	_ = fs.Parse(args)
	f, err := loadData(*data, *seed)
	if err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("profile needs -out")
	}
	cfg := foresight.ProfileConfig{K: *k, Seed: *seed, Spearman: *spearman, Workers: *workers}
	var p *foresight.Profile
	switch {
	case *parts > 1 && *shards != 0:
		return fmt.Errorf("profile: -parts and -shards are mutually exclusive")
	case *parts > 1:
		p = foresight.BuildProfilePartitioned(f, cfg, *parts)
	case *shards != 0:
		p = foresight.BuildProfileSharded(f, cfg, *shards)
	default:
		p = foresight.BuildProfile(f, cfg)
	}
	file, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer file.Close()
	if err := p.Save(file); err != nil {
		return err
	}
	info, _ := file.Stat()
	size := int64(0)
	if info != nil {
		size = info.Size()
	}
	fmt.Printf("wrote %s (%d bytes) for %s\n", *out, size, f.Summary())
	return nil
}
