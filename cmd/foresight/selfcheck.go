package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"foresight"
	"foresight/internal/core"
	"foresight/internal/sketch"
	"foresight/internal/sketch/sketchcheck"
)

// runSelfcheck executes the sketch invariant suite against live
// profiles of -data: ground-truth checks for every per-column sketch,
// persist→load and Clone query identity, and cross-checks of the
// partitioned/sharded/extend build paths against the sequential build
// within -tol. With -profile it instead verifies an already-persisted
// sketch store against the dataset it claims to summarize. It then
// cross-checks the pruning contract — ScoreBound ≥ Score on sampled
// candidates of every bounded insight class, both scoring paths —
// since an unsound bound would silently change top-k results. Exits
// non-zero when any invariant is violated, so it slots into CI and
// operational smoke tests directly.
func runSelfcheck(args []string) error {
	fs := flag.NewFlagSet("selfcheck", flag.ExitOnError)
	data := fs.String("data", "", "CSV path or demo dataset name")
	profilePath := fs.String("profile", "", "verify this saved sketch store instead of building fresh")
	parts := fs.Int("parts", 3, "partitions for the partitioned-build path")
	shards := fs.Int("shards", 4, "shards for the sharded-build and extend paths")
	tol := fs.Float64("tol", 0.07, "estimator-delta gate between build paths (the E13 gate)")
	boundSample := fs.Int("bound-sample", 64, "candidates sampled per class/metric for the ScoreBound ≥ Score gate (0 = all)")
	seed := fs.Int64("seed", 42, "seed for demo datasets / sketches")
	_ = fs.Parse(args)
	f, err := loadData(*data, *seed)
	if err != nil {
		return err
	}

	var r *sketchcheck.Report
	var p *sketch.DatasetProfile
	if *profilePath != "" {
		file, err := os.Open(*profilePath)
		if err != nil {
			return err
		}
		defer file.Close()
		p, err = sketch.LoadProfile(file)
		if err != nil {
			return err
		}
		r = sketchcheck.RunProfile(f, p)
	} else {
		r = sketchcheck.Run(f, sketchcheck.Config{
			Profile:  sketch.ProfileConfig{Seed: *seed},
			Parts:    *parts,
			Shards:   *shards,
			ScoreTol: *tol,
		})
		p = sketch.BuildProfile(f, sketch.ProfileConfig{Seed: *seed, Spearman: true})
	}
	sketchcheck.WriteReport(os.Stdout, r)

	violations := core.CheckScoreBounds(foresight.NewRegistry(), f, p, *boundSample)
	if len(violations) == 0 {
		fmt.Printf("score-bound gate OK: ScoreBound ≥ Score on sampled candidates (sample=%d per class/metric)\n", *boundSample)
	}
	for _, v := range violations {
		fmt.Printf("VIOLATION score-bound %s/%s %s (%s): score %v > bound %v\n",
			v.Class, v.Metric, strings.Join(v.Attrs, ","), v.Mode, v.Score, v.Bound)
	}

	if !r.Ok() || len(violations) > 0 {
		return fmt.Errorf("selfcheck: %d invariant violation(s)", len(r.Violations)+len(violations))
	}
	return nil
}
