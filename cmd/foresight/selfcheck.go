package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"foresight"
	"foresight/internal/core"
	"foresight/internal/durable"
	"foresight/internal/sketch"
	"foresight/internal/sketch/sketchcheck"
)

// runSelfcheck executes the sketch invariant suite against live
// profiles of -data: ground-truth checks for every per-column sketch,
// persist→load and Clone query identity, and cross-checks of the
// partitioned/sharded/extend build paths against the sequential build
// within -tol. With -profile it instead verifies an already-persisted
// sketch store against the dataset it claims to summarize. It then
// cross-checks the pruning contract — ScoreBound ≥ Score on sampled
// candidates of every bounded insight class, both scoring paths —
// since an unsound bound would silently change top-k results. Exits
// non-zero when any invariant is violated, so it slots into CI and
// operational smoke tests directly.
func runSelfcheck(args []string) error {
	fs := flag.NewFlagSet("selfcheck", flag.ExitOnError)
	data := fs.String("data", "", "CSV path or demo dataset name")
	profilePath := fs.String("profile", "", "verify this saved sketch store instead of building fresh")
	parts := fs.Int("parts", 3, "partitions for the partitioned-build path")
	shards := fs.Int("shards", 4, "shards for the sharded-build and extend paths")
	tol := fs.Float64("tol", 0.07, "estimator-delta gate between build paths (the E13 gate)")
	boundSample := fs.Int("bound-sample", 64, "candidates sampled per class/metric for the ScoreBound ≥ Score gate (0 = all)")
	seed := fs.Int64("seed", 42, "seed for demo datasets / sketches")
	walDir := fs.String("wal", "", "verify this WAL/snapshot directory instead: CRC-scan every segment, replay into a scratch engine over -data, and gate the recovered profile against a cold rebuild")
	permissive := fs.Bool("recover-permissive", false, "with -wal: tolerate mid-log corruption and verify the valid prefix")
	_ = fs.Parse(args)
	f, err := loadData(*data, *seed)
	if err != nil {
		return err
	}
	if *walDir != "" {
		return runWALCheck(f, *walDir, *tol, *seed, *permissive)
	}

	var r *sketchcheck.Report
	var p *sketch.DatasetProfile
	if *profilePath != "" {
		file, err := os.Open(*profilePath)
		if err != nil {
			return err
		}
		defer file.Close()
		p, err = sketch.LoadProfile(file)
		if err != nil {
			return err
		}
		r = sketchcheck.RunProfile(f, p)
	} else {
		r = sketchcheck.Run(f, sketchcheck.Config{
			Profile:  sketch.ProfileConfig{Seed: *seed},
			Parts:    *parts,
			Shards:   *shards,
			ScoreTol: *tol,
		})
		p = sketch.BuildProfile(f, sketch.ProfileConfig{Seed: *seed, Spearman: true})
	}
	sketchcheck.WriteReport(os.Stdout, r)

	violations := core.CheckScoreBounds(foresight.NewRegistry(), f, p, *boundSample)
	if len(violations) == 0 {
		fmt.Printf("score-bound gate OK: ScoreBound ≥ Score on sampled candidates (sample=%d per class/metric)\n", *boundSample)
	}
	for _, v := range violations {
		fmt.Printf("VIOLATION score-bound %s/%s %s (%s): score %v > bound %v\n",
			v.Class, v.Metric, strings.Join(v.Attrs, ","), v.Mode, v.Score, v.Bound)
	}

	if !r.Ok() || len(violations) > 0 {
		return fmt.Errorf("selfcheck: %d invariant violation(s)", len(r.Violations)+len(violations))
	}
	return nil
}

// runWALCheck verifies a durability directory end to end without
// touching it: a read-only recovery (no torn-tail repair, no WAL
// opened for appending) CRC-scans every segment and replays snapshot +
// tail into a scratch engine over the same base dataset the serving
// process uses, then the recovered sketch profile is gated against a
// cold from-scratch rebuild of the recovered frame with the usual
// estimator-delta tolerance. Exits non-zero on CRC damage, mid-log
// corruption (unless -recover-permissive), dataset mismatch, or a
// recovered profile outside the gate.
func runWALCheck(f *foresight.Frame, dir string, tol float64, seed int64, permissive bool) error {
	if tol <= 0 {
		tol = 0.07
	}
	cfg := sketch.ProfileConfig{Seed: seed, Spearman: true}
	base := sketch.BuildProfile(f, cfg)
	engine, err := foresight.NewEngine(f, foresight.NewRegistry(), base)
	if err != nil {
		return err
	}
	m, err := durable.Open(durable.Options{
		Dir: dir, ReadOnly: true, Permissive: permissive,
		Logf: func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) },
	})
	if err != nil {
		return err
	}
	rec, err := m.Recover(engine)
	if err != nil {
		return fmt.Errorf("selfcheck -wal: %w", err)
	}
	fmt.Printf("wal %s: snapshot seq %d (%d rows, %d skipped) + %d replayed batches (%d rows), last seq %d, torn tail %v\n",
		dir, rec.SnapshotSeq, rec.SnapshotRows, rec.SnapshotsSkipped,
		rec.ReplayedBatches, rec.ReplayedRows, rec.LastSeq, rec.TornTailDetected)

	// The recovered profile grew by snapshot-restore + incremental
	// Extend; the cold rebuild sees the recovered frame in one pass.
	// Agreement within the estimator gate is the whole durability
	// claim: a restart answers like a process that never died.
	cold := sketch.BuildProfile(engine.Frame(), cfg)
	r := &sketchcheck.Report{}
	sketchcheck.CheckProfilesCompatible(r, "wal-recovered", engine.Profile(), cold, tol, false)
	sketchcheck.WriteReport(os.Stdout, r)
	if !r.Ok() {
		return fmt.Errorf("selfcheck -wal: %d invariant violation(s)", len(r.Violations))
	}
	fmt.Printf("wal gate OK: recovered profile within %.2f of a cold rebuild (%d recovered rows, %d total)\n",
		tol, engine.Frame().Rows()-f.Rows(), engine.Frame().Rows())
	return nil
}
