package main

import (
	"flag"
	"fmt"
	"os"

	"foresight/internal/sketch"
	"foresight/internal/sketch/sketchcheck"
)

// runSelfcheck executes the sketch invariant suite against live
// profiles of -data: ground-truth checks for every per-column sketch,
// persist→load and Clone query identity, and cross-checks of the
// partitioned/sharded/extend build paths against the sequential build
// within -tol. With -profile it instead verifies an already-persisted
// sketch store against the dataset it claims to summarize. Exits
// non-zero when any invariant is violated, so it slots into CI and
// operational smoke tests directly.
func runSelfcheck(args []string) error {
	fs := flag.NewFlagSet("selfcheck", flag.ExitOnError)
	data := fs.String("data", "", "CSV path or demo dataset name")
	profilePath := fs.String("profile", "", "verify this saved sketch store instead of building fresh")
	parts := fs.Int("parts", 3, "partitions for the partitioned-build path")
	shards := fs.Int("shards", 4, "shards for the sharded-build and extend paths")
	tol := fs.Float64("tol", 0.07, "estimator-delta gate between build paths (the E13 gate)")
	seed := fs.Int64("seed", 42, "seed for demo datasets / sketches")
	_ = fs.Parse(args)
	f, err := loadData(*data, *seed)
	if err != nil {
		return err
	}

	var r *sketchcheck.Report
	if *profilePath != "" {
		file, err := os.Open(*profilePath)
		if err != nil {
			return err
		}
		defer file.Close()
		p, err := sketch.LoadProfile(file)
		if err != nil {
			return err
		}
		r = sketchcheck.RunProfile(f, p)
	} else {
		r = sketchcheck.Run(f, sketchcheck.Config{
			Profile:  sketch.ProfileConfig{Seed: *seed},
			Parts:    *parts,
			Shards:   *shards,
			ScoreTol: *tol,
		})
	}
	sketchcheck.WriteReport(os.Stdout, r)
	if !r.Ok() {
		return fmt.Errorf("selfcheck: %d invariant violation(s)", len(r.Violations))
	}
	return nil
}
