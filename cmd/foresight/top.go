package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"foresight/internal/obs/telemetry"
)

// topStats is the slice of /api/stats the dashboard needs.
type topStats struct {
	Cache struct {
		Hits       uint64 `json:"hits"`
		Misses     uint64 `json:"misses"`
		Entries    int    `json:"entries"`
		Generation uint64 `json:"generation"`
	} `json:"cache"`
	Workers int            `json:"workers"`
	UptimeS float64        `json:"uptime_s"`
	Build   map[string]any `json:"build"`
}

// runTop renders a live text dashboard over a running server's
// /api/debug/insights and /api/stats endpoints — Foresight observing
// itself through its own sketches.
func runTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8600", "base URL of a running foresightd / foresight serve")
	interval := fs.Duration("interval", 2*time.Second, "refresh interval")
	once := fs.Bool("once", false, "render a single frame and exit")
	topN := fs.Int("top", 5, "hot columns/pairs per class")
	_ = fs.Parse(args)

	base := strings.TrimRight(*addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	client := &http.Client{Timeout: 5 * time.Second}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	for {
		var snap telemetry.Snapshot
		if err := fetchJSON(ctx, client, fmt.Sprintf("%s/api/debug/insights?top=%d", base, *topN), &snap); err != nil {
			return fmt.Errorf("fetching %s/api/debug/insights: %w", base, err)
		}
		var stats topStats
		if err := fetchJSON(ctx, client, base+"/api/stats", &stats); err != nil {
			return fmt.Errorf("fetching %s/api/stats: %w", base, err)
		}
		frame := renderTop(snap, stats, *topN)
		if *once {
			fmt.Print(frame)
			return nil
		}
		// Clear screen + home, then the frame, like top(1).
		fmt.Print("\x1b[2J\x1b[H" + frame)
		select {
		case <-ctx.Done():
			fmt.Println()
			return nil
		case <-time.After(*interval):
		}
	}
}

func fetchJSON(ctx context.Context, client *http.Client, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	res, err := client.Do(req)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d", url, res.StatusCode)
	}
	return json.NewDecoder(res.Body).Decode(out)
}

// renderTop formats one dashboard frame. It is pure (no I/O, no
// clock) so tests can pin the layout.
func renderTop(snap telemetry.Snapshot, stats topStats, topN int) string {
	var b strings.Builder
	version, _ := stats.Build["version"].(string)
	if version == "" {
		version = "?"
	}
	staleness := "live"
	if snap.Stale {
		staleness = fmt.Sprintf("STALE (sketches gen %d, engine gen %d)",
			snap.Generation, snap.CurrentGeneration)
	}
	fmt.Fprintf(&b, "foresight top — %s  up %s  workers=%d  gen=%d [%s]\n",
		version, formatUptime(stats.UptimeS), stats.Workers, snap.CurrentGeneration, staleness)
	fmt.Fprintf(&b, "queries=%d  resets=%d  stale_samples=%d  cache hits=%d misses=%d entries=%d  ε=±%.3f\n",
		snap.TotalQueries, snap.Resets, snap.StaleSamples,
		stats.Cache.Hits, stats.Cache.Misses, stats.Cache.Entries, snap.ScoreRankError)

	if len(snap.Classes) == 0 {
		b.WriteString("\nno insight telemetry yet — issue a query against the server\n")
	} else {
		classW := len("CLASS")
		for _, c := range snap.Classes {
			if len(c.Class) > classW {
				classW = len(c.Class)
			}
		}
		fmt.Fprintf(&b, "\n%-*s %8s %9s %8s %8s %8s %7s %7s %7s  %s\n",
			classW, "CLASS", "QUERIES", "CANDS", "PRUNED", "FILTERED", "EMITTED", "P50", "P90", "P99", "MARGIN TREND")
		for _, c := range snap.Classes {
			fmt.Fprintf(&b, "%-*s %8d %9d %8d %8d %8d %7s %7s %7s  %s\n",
				classW, c.Class, c.Queries, c.Candidates, c.Pruned, c.Filtered, c.Emitted,
				formatQuantile(c.Quantiles, "p50"),
				formatQuantile(c.Quantiles, "p90"),
				formatQuantile(c.Quantiles, "p99"),
				sparkline(marginValues(c.Margins)))
		}
		b.WriteString("\nHOT COLUMNS\n")
		for _, c := range snap.Classes {
			if len(c.HotColumns) == 0 {
				continue
			}
			items := c.HotColumns
			if topN > 0 && len(items) > topN {
				items = items[:topN]
			}
			parts := make([]string, len(items))
			for i, h := range items {
				parts[i] = fmt.Sprintf("%s(%d)", h.Item, h.Count)
			}
			fmt.Fprintf(&b, "  %-*s %s\n", classW, c.Class, strings.Join(parts, "  "))
		}
	}

	if len(snap.RecentQueries) > 0 {
		n := len(snap.RecentQueries)
		if n > 8 {
			n = 8
		}
		fmt.Fprintf(&b, "\nRECENT QUERIES (last %d of %d)\n", n, len(snap.RecentQueries))
		fmt.Fprintf(&b, "  %-14s %5s %9s %8s %8s %8s %10s\n",
			"OP", "GEN", "MS", "CLASSES", "CANDS", "EMITTED", "MARGIN")
		for _, r := range snap.RecentQueries[:n] {
			margin := "—"
			if r.MinMargin >= 0 {
				margin = fmt.Sprintf("%.4f", r.MinMargin)
			}
			fmt.Fprintf(&b, "  %-14s %5d %9.2f %8d %8d %8d %10s\n",
				r.Op, r.Generation, r.DurationMS, r.Classes, r.Candidates, r.Emitted, margin)
		}
	}
	return b.String()
}

func formatUptime(s float64) string {
	d := time.Duration(s * float64(time.Second)).Round(time.Second)
	return d.String()
}

func formatQuantile(q map[string]float64, key string) string {
	v, ok := q[key]
	if !ok {
		return "—"
	}
	return fmt.Sprintf("%.3f", v)
}

func marginValues(pts []telemetry.MarginPoint) []float64 {
	out := make([]float64, len(pts))
	for i, p := range pts {
		out[i] = p.Margin
	}
	return out
}

// sparkline renders values as a block-character trend, scaled to the
// window's own min/max (flat windows render mid-height).
func sparkline(vals []float64) string {
	if len(vals) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	lo, hi := sorted[0], sorted[len(sorted)-1]
	out := make([]rune, len(vals))
	for i, v := range vals {
		if hi == lo {
			out[i] = blocks[len(blocks)/2]
			continue
		}
		idx := int((v - lo) / (hi - lo) * float64(len(blocks)-1))
		out[i] = blocks[idx]
	}
	return string(out)
}
