// Command foresight is the Foresight CLI: load a CSV (or one of the
// built-in demo datasets), print ranked insight carousels, run insight
// queries, and export insight visualizations as SVG.
//
// Usage:
//
//	foresight info      -data file.csv
//	foresight carousels -data file.csv [-k 5] [-approx]
//	foresight query     -data file.csv -class linear [-metric spearman]
//	                    [-fix attr1,attr2] [-min 0.5] [-max 0.8] [-k 10] [-approx] [-prune=false]
//	foresight overview  -data file.csv [-class linear] [-svg out.svg]
//	foresight render    -data file.csv -class linear -attrs x,y -svg out.svg
//	foresight selfcheck -data file.csv [-profile store.bin] [-parts 3] [-shards 4] [-tol 0.07]
//	foresight serve     -data file.csv [-addr :8600] [-workers 0] [-cache]
//	foresight top       [-addr http://localhost:8600] [-interval 2s] [-once]
//	foresight demo      -name oecd|parkinson|imdb -out file.csv
//
// -data accepts a CSV path or the names oecd, parkinson, imdb for the
// built-in synthetic demo datasets.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"foresight"
	"foresight/internal/durable"
	"foresight/internal/obs"
	"foresight/internal/server"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "info":
		err = runInfo(args)
	case "carousels":
		err = runCarousels(args)
	case "query":
		err = runQuery(args)
	case "overview":
		err = runOverview(args)
	case "render":
		err = runRender(args)
	case "demo":
		err = runDemo(args)
	case "serve":
		err = runServe(args)
	case "top":
		err = runTop(args)
	case "report":
		err = runReport(args)
	case "profile":
		err = runProfile(args)
	case "selfcheck":
		err = runSelfcheck(args)
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "foresight: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "foresight:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: foresight <command> [flags]

commands:
  info       dataset shape and per-column summary
  carousels  top-k insights per class (the Figure-1 view)
  query      one insight query (class, metric, fixed attrs, score range)
  overview   per-class global view (the Figure-2 heat map)
  render     one insight visualization as SVG
  report     self-contained HTML report (carousels + overview)
  profile    build and persist a sketch store (-parts partitioned, -shards parallel)
  selfcheck  verify sketch invariants against a dataset (-profile checks a saved store)
  serve      start the demo web server (same UI as foresightd)
  top        live insight-telemetry dashboard for a running server
  demo       write a synthetic demo dataset as CSV

run 'foresight <command> -h' for per-command flags`)
}

// loadData opens -data: a CSV path or a built-in demo dataset name.
func loadData(path string, seed int64) (*foresight.Frame, error) {
	switch strings.ToLower(path) {
	case "":
		return nil, fmt.Errorf("missing -data (CSV path or oecd|parkinson|imdb)")
	case "oecd":
		return foresight.OECDDataset(0, seed), nil
	case "parkinson":
		return foresight.ParkinsonDataset(0, seed), nil
	case "imdb":
		return foresight.IMDBDataset(0, seed), nil
	default:
		return foresight.ReadCSVFile(path, "", nil)
	}
}

func newEngine(f *foresight.Frame, approx bool, seed int64) (*foresight.Engine, error) {
	return newEngineWithProfile(f, approx, false, seed, "", 0)
}

// newEngineWithProfile builds the engine; when approx or prune is
// requested a sketch store is loaded from profilePath (if given) or
// built fresh — with the sharded data-parallel builder when
// buildShards != 0. Pruning needs the store only for its cheap score
// bounds; exact queries still score from raw data.
func newEngineWithProfile(f *foresight.Frame, approx, prune bool, seed int64, profilePath string, buildShards int) (*foresight.Engine, error) {
	var profile *foresight.Profile
	if profilePath != "" {
		file, err := os.Open(profilePath)
		if err != nil {
			return nil, err
		}
		defer file.Close()
		profile, err = foresight.LoadProfile(file)
		if err != nil {
			return nil, err
		}
	} else if approx || prune {
		profile = foresight.BuildProfileSharded(f,
			foresight.ProfileConfig{Seed: seed, Spearman: true}, buildShards)
	}
	engine, err := foresight.NewEngine(f, foresight.NewRegistry(), profile)
	if err != nil {
		return nil, err
	}
	engine.SetPruning(prune)
	return engine, nil
}

func runInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	data := fs.String("data", "", "CSV path or demo dataset name")
	seed := fs.Int64("seed", 42, "seed for demo datasets")
	_ = fs.Parse(args)
	f, err := loadData(*data, *seed)
	if err != nil {
		return err
	}
	fmt.Println(f.Summary())
	for _, name := range f.Names() {
		col, _ := f.Lookup(name)
		meta := f.Meta(name)
		extra := ""
		if meta.Unit != "" {
			extra = " [" + meta.Unit + "]"
		}
		fmt.Printf("  %-28s %-12s missing=%d%s\n", name, col.Kind(), col.Missing(), extra)
	}
	return nil
}

func runCarousels(args []string) error {
	fs := flag.NewFlagSet("carousels", flag.ExitOnError)
	data := fs.String("data", "", "CSV path or demo dataset name")
	k := fs.Int("k", 5, "insights per class")
	approx := fs.Bool("approx", false, "answer from sketches")
	prune := fs.Bool("prune", true, "bound-based top-k candidate pruning (identical results; builds the sketch store)")
	workers := fs.Int("workers", 1, "parallel scoring workers (0 = GOMAXPROCS)")
	seed := fs.Int64("seed", 42, "seed for demo datasets / sketches")
	_ = fs.Parse(args)
	f, err := loadData(*data, *seed)
	if err != nil {
		return err
	}
	engine, err := newEngineWithProfile(f, *approx, *prune, *seed, "", 0)
	if err != nil {
		return err
	}
	engine.SetWorkers(*workers)
	carousels, err := engine.Carousels(*k, *approx)
	if err != nil {
		return err
	}
	for _, r := range carousels {
		fmt.Printf("\n═══ %s (%s) ═══\n", r.Class, r.Metric)
		for _, in := range r.Insights {
			panel, err := foresight.RenderASCII(f, in)
			if err != nil {
				fmt.Printf("  %s (render: %v)\n", in.String(), err)
				continue
			}
			fmt.Println(indent(panel, "  "))
		}
	}
	return nil
}

func runQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	data := fs.String("data", "", "CSV path or demo dataset name")
	class := fs.String("class", "", "insight class (empty = all)")
	metric := fs.String("metric", "", "ranking metric (empty = class default)")
	fix := fs.String("fix", "", "comma-separated fixed attributes")
	minScore := fs.Float64("min", 0, "minimum strength")
	maxScore := fs.Float64("max", 0, "maximum strength (0 = unbounded; negative is an error)")
	k := fs.Int("k", 10, "top-k per class")
	approx := fs.Bool("approx", false, "answer from sketches")
	prune := fs.Bool("prune", true, "bound-based top-k candidate pruning (identical results; builds the sketch store)")
	profilePath := fs.String("profile", "", "load a saved sketch store (implies -approx)")
	seed := fs.Int64("seed", 42, "seed for demo datasets / sketches")
	_ = fs.Parse(args)
	if *profilePath != "" {
		*approx = true
	}
	f, err := loadData(*data, *seed)
	if err != nil {
		return err
	}
	engine, err := newEngineWithProfile(f, *approx, *prune, *seed, *profilePath, 0)
	if err != nil {
		return err
	}
	q := foresight.Query{
		Metric:   *metric,
		MinScore: *minScore,
		MaxScore: *maxScore,
		K:        *k,
		Approx:   *approx,
	}
	if *class != "" {
		q.Classes = []string{*class}
	}
	if *fix != "" {
		q.Fixed = strings.Split(*fix, ",")
	}
	results, err := engine.Execute(q)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		fmt.Println("no insights matched the query")
		return nil
	}
	for _, r := range results {
		fmt.Printf("\n%s (%s):\n", r.Class, r.Metric)
		for i, in := range r.Insights {
			fmt.Printf("  %2d. %-40s score=%.4f raw=%+.4f\n",
				i+1, strings.Join(in.Attrs, ", "), in.Score, in.Raw)
		}
	}
	return nil
}

func runOverview(args []string) error {
	fs := flag.NewFlagSet("overview", flag.ExitOnError)
	data := fs.String("data", "", "CSV path or demo dataset name")
	class := fs.String("class", "linear", "insight class")
	metric := fs.String("metric", "", "ranking metric")
	svgPath := fs.String("svg", "", "write the heat map SVG here")
	approx := fs.Bool("approx", false, "answer from sketches")
	seed := fs.Int64("seed", 42, "seed for demo datasets / sketches")
	_ = fs.Parse(args)
	f, err := loadData(*data, *seed)
	if err != nil {
		return err
	}
	engine, err := newEngine(f, *approx, *seed)
	if err != nil {
		return err
	}
	ov, err := engine.Overview(*class, *metric, *approx)
	if err != nil {
		return err
	}
	fmt.Printf("%s overview (%s): %d×%d, %d scored tuples\n",
		ov.Class, ov.Metric, len(ov.RowAttrs), len(ov.ColAttrs), len(ov.Insights))
	top := ov.Insights
	if len(top) > 10 {
		top = top[:10]
	}
	for i, in := range top {
		fmt.Printf("  %2d. %-40s %+.4f\n", i+1, strings.Join(in.Attrs, ", "), in.Raw)
	}
	if *svgPath != "" {
		svg := foresight.CorrelogramSVG(ov, fmt.Sprintf("%s overview of %s", ov.Class, f.Name()))
		if err := os.WriteFile(*svgPath, []byte(svg), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", *svgPath)
	}
	return nil
}

func runRender(args []string) error {
	fs := flag.NewFlagSet("render", flag.ExitOnError)
	data := fs.String("data", "", "CSV path or demo dataset name")
	class := fs.String("class", "", "insight class")
	metric := fs.String("metric", "", "ranking metric")
	attrs := fs.String("attrs", "", "comma-separated attribute tuple")
	svgPath := fs.String("svg", "", "output SVG path (default stdout)")
	seed := fs.Int64("seed", 42, "seed for demo datasets")
	_ = fs.Parse(args)
	f, err := loadData(*data, *seed)
	if err != nil {
		return err
	}
	if *class == "" || *attrs == "" {
		return fmt.Errorf("render needs -class and -attrs")
	}
	reg := foresight.NewRegistry()
	c, ok := reg.Lookup(*class)
	if !ok {
		return fmt.Errorf("unknown class %q (have %v)", *class, reg.Names())
	}
	in, err := c.Score(f, strings.Split(*attrs, ","), *metric)
	if err != nil {
		return err
	}
	svg, err := foresight.RenderSVG(f, in)
	if err != nil {
		return err
	}
	if *svgPath == "" {
		fmt.Println(svg)
		return nil
	}
	if err := os.WriteFile(*svgPath, []byte(svg), 0o644); err != nil {
		return err
	}
	fmt.Printf("%s → %s\n", in.String(), *svgPath)
	return nil
}

// runServe starts the demo web server over -data, mirroring
// cmd/foresightd so the CLI binary alone can serve the UI.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	data := fs.String("data", "", "CSV path or demo dataset name")
	addr := fs.String("addr", ":8600", "listen address")
	k := fs.Int("k", 5, "insights per carousel")
	approx := fs.Bool("approx", false, "answer queries from sketches")
	workers := fs.Int("workers", 0, "parallel scoring workers (0 = GOMAXPROCS)")
	buildShards := fs.Int("build-shards", 0, "parallel profile-build shards for preprocessing and large ingest batches (0 = sequential, <0 = GOMAXPROCS)")
	cache := fs.Bool("cache", true, "memoize insight scores across queries")
	prune := fs.Bool("prune", true, "bound-based top-k candidate pruning (results are identical either way; off = score every candidate)")
	profilePath := fs.String("profile", "", "load a saved sketch store (implies -approx)")
	seed := fs.Int64("seed", 42, "seed for demo datasets / sketches")
	requestTimeout := fs.Duration("request-timeout", 5*time.Second, "per-request API deadline (0 = none)")
	maxInflight := fs.Int("max-inflight", 256, "max concurrently served API requests (0 = unlimited)")
	queryLogSample := fs.Float64("query-log-sample", 0, "fraction of engine queries logged as structured JSON telemetry lines (0 = off)")
	walDir := fs.String("wal-dir", "", "durability directory for the write-ahead log and snapshots (empty = no durable ingest)")
	fsyncMode := fs.String("fsync", "interval", "WAL fsync policy: always | interval | off")
	recoverPermissive := fs.Bool("recover-permissive", false, "keep the valid WAL prefix on mid-log corruption instead of refusing to start")
	_ = fs.Parse(args)
	if *profilePath != "" {
		*approx = true
	}
	f, err := loadData(*data, *seed)
	if err != nil {
		return err
	}
	engine, err := newEngineWithProfile(f, *approx, *prune, *seed, *profilePath, *buildShards)
	if err != nil {
		return err
	}
	engine.SetWorkers(*workers)
	engine.SetBuildShards(*buildShards)
	engine.SetCacheEnabled(*cache)
	reg := obs.NewRegistry()
	obs.SetBuildInfo(reg, "foresight-cli")
	// Durable ingest mirrors cmd/foresightd, but recovery runs
	// synchronously before the listener starts — the CLI favors a
	// simple startup over serving queries mid-replay.
	var durMgr *durable.Manager
	srvOpts := server.Options{
		Registry:       reg,
		LogWriter:      os.Stderr,
		Version:        "foresight-cli",
		RequestTimeout: *requestTimeout,
		MaxInflight:    *maxInflight,
		QueryLogSample: *queryLogSample,
	}
	if *walDir != "" {
		policy, err := durable.ParseFsyncPolicy(*fsyncMode)
		if err != nil {
			return err
		}
		durMgr, err = durable.Open(durable.Options{
			Dir: *walDir, Fsync: policy, Permissive: *recoverPermissive,
			Logf: func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) },
		})
		if err != nil {
			return err
		}
		durMgr.Instrument(reg)
		rec, err := durMgr.Recover(engine)
		if err != nil {
			return fmt.Errorf("WAL recovery: %w", err)
		}
		fmt.Printf("foresight: recovered %s: snapshot seq %d + %d replayed batches (%d rows), last seq %d\n",
			*walDir, rec.SnapshotSeq, rec.ReplayedBatches, rec.ReplayedRows, rec.LastSeq)
		defer durMgr.Close()
		srvOpts.Durable = durMgr
	}
	srv := server.New(engine, *k, *approx, srvOpts)
	fmt.Printf("foresight: serving %s on http://localhost%s (workers=%d cache=%v prune=%v; /metrics, /api/stats, /api/debug/insights)\n",
		f.Summary(), *addr, engine.Workers(), *cache, engine.PruningEnabled())

	// Same lifecycle discipline as cmd/foresightd: listener timeouts
	// against stalled clients, SIGINT/SIGTERM drains in-flight
	// requests before exiting.
	writeTimeout := 30 * time.Second
	if *requestTimeout > 0 && *requestTimeout+10*time.Second > writeTimeout {
		writeTimeout = *requestTimeout + 10*time.Second
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       120 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Println("foresight: signal received, draining in-flight requests...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	err = httpSrv.Shutdown(shutdownCtx)
	srv.Close() // stop the ingest worker before the WAL closes
	return err
}

func runDemo(args []string) error {
	fs := flag.NewFlagSet("demo", flag.ExitOnError)
	name := fs.String("name", "oecd", "oecd | parkinson | imdb")
	out := fs.String("out", "", "output CSV path")
	rows := fs.Int("rows", 0, "row count (0 = paper default)")
	seed := fs.Int64("seed", 42, "generator seed")
	_ = fs.Parse(args)
	var f *foresight.Frame
	switch strings.ToLower(*name) {
	case "oecd":
		f = foresight.OECDDataset(*rows, *seed)
	case "parkinson":
		f = foresight.ParkinsonDataset(*rows, *seed)
	case "imdb":
		f = foresight.IMDBDataset(*rows, *seed)
	default:
		return fmt.Errorf("unknown demo dataset %q", *name)
	}
	if *out == "" {
		return f.WriteCSV(os.Stdout)
	}
	file, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer file.Close()
	if err := f.WriteCSV(file); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %s\n", *out, f.Summary())
	return nil
}

func indent(text, prefix string) string {
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n")
}
