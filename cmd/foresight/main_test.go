package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLoadData(t *testing.T) {
	for _, name := range []string{"oecd", "parkinson", "imdb", "OECD"} {
		f, err := loadData(name, 1)
		if err != nil || f.Rows() == 0 {
			t.Errorf("loadData(%s): %v", name, err)
		}
	}
	if _, err := loadData("", 1); err == nil {
		t.Error("empty -data should fail")
	}
	if _, err := loadData("/no/such/file.csv", 1); err == nil {
		t.Error("missing file should fail")
	}
	// CSV path.
	dir := t.TempDir()
	path := filepath.Join(dir, "d.csv")
	if err := os.WriteFile(path, []byte("a,b\n1,x\n2,y\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := loadData(path, 1)
	if err != nil || f.Rows() != 2 {
		t.Errorf("loadData(csv): %v", err)
	}
}

func TestRunInfoAndQuery(t *testing.T) {
	if err := runInfo([]string{"-data", "oecd"}); err != nil {
		t.Errorf("runInfo: %v", err)
	}
	if err := runQuery([]string{"-data", "oecd", "-class", "linear", "-k", "3"}); err != nil {
		t.Errorf("runQuery: %v", err)
	}
	if err := runQuery([]string{"-data", "oecd", "-class", "linear",
		"-fix", "TimeDevotedToLeisure", "-min", "0.2", "-max", "0.9"}); err != nil {
		t.Errorf("runQuery with filters: %v", err)
	}
	if err := runQuery([]string{"-data", "oecd", "-class", "bogus"}); err == nil {
		t.Error("bogus class should fail")
	}
}

func TestRunOverviewAndRender(t *testing.T) {
	dir := t.TempDir()
	svg := filepath.Join(dir, "fig2.svg")
	if err := runOverview([]string{"-data", "oecd", "-svg", svg}); err != nil {
		t.Fatalf("runOverview: %v", err)
	}
	data, err := os.ReadFile(svg)
	if err != nil || !strings.HasPrefix(string(data), "<svg") {
		t.Errorf("overview SVG not written: %v", err)
	}
	out := filepath.Join(dir, "skew.svg")
	if err := runRender([]string{"-data", "oecd", "-class", "skew",
		"-attrs", "SelfReportedHealth", "-svg", out}); err != nil {
		t.Fatalf("runRender: %v", err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Error("render SVG not written")
	}
	if err := runRender([]string{"-data", "oecd"}); err == nil {
		t.Error("render without class/attrs should fail")
	}
	if err := runRender([]string{"-data", "oecd", "-class", "nope", "-attrs", "x"}); err == nil {
		t.Error("unknown class should fail")
	}
}

func TestRunDemoProfileReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "oecd.csv")
	if err := runDemo([]string{"-name", "oecd", "-out", csv}); err != nil {
		t.Fatalf("runDemo: %v", err)
	}
	if fi, err := os.Stat(csv); err != nil || fi.Size() == 0 {
		t.Fatal("demo CSV not written")
	}
	if err := runDemo([]string{"-name", "wat"}); err == nil {
		t.Error("unknown demo should fail")
	}

	prof := filepath.Join(dir, "oecd.profile")
	if err := runProfile([]string{"-data", csv, "-out", prof, "-k", "32", "-parts", "2"}); err != nil {
		t.Fatalf("runProfile: %v", err)
	}
	if fi, err := os.Stat(prof); err != nil || fi.Size() == 0 {
		t.Fatal("profile not written")
	}
	if err := runProfile([]string{"-data", csv}); err == nil {
		t.Error("profile without -out should fail")
	}

	// Query against the saved profile.
	if err := runQuery([]string{"-data", csv, "-profile", prof, "-class", "linear", "-k", "3"}); err != nil {
		t.Fatalf("runQuery with profile: %v", err)
	}

	report := filepath.Join(dir, "report.html")
	if err := runReport([]string{"-data", csv, "-out", report, "-k", "2"}); err != nil {
		t.Fatalf("runReport: %v", err)
	}
	data, err := os.ReadFile(report)
	if err != nil || !strings.Contains(string(data), "<!DOCTYPE html>") {
		t.Error("report not written")
	}
}

func TestRunSelfcheck(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "oecd.csv")
	if err := runDemo([]string{"-name", "oecd", "-out", csv}); err != nil {
		t.Fatalf("runDemo: %v", err)
	}
	if err := runSelfcheck([]string{"-data", csv, "-parts", "2", "-shards", "2"}); err != nil {
		t.Fatalf("selfcheck on demo data: %v", err)
	}
	// Verify a persisted store, then verify it against the WRONG data
	// — that must fail, or the subcommand guards nothing.
	prof := filepath.Join(dir, "oecd.profile")
	if err := runProfile([]string{"-data", csv, "-out", prof}); err != nil {
		t.Fatalf("runProfile: %v", err)
	}
	if err := runSelfcheck([]string{"-data", csv, "-profile", prof}); err != nil {
		t.Fatalf("selfcheck -profile: %v", err)
	}
	if err := runSelfcheck([]string{"-data", "imdb", "-profile", prof}); err == nil {
		t.Error("selfcheck accepted a profile of different data")
	}
	if err := runSelfcheck([]string{}); err == nil {
		t.Error("selfcheck without -data should fail")
	}
}

func TestIndentHelper(t *testing.T) {
	if got := indent("a\nb\n", "> "); got != "> a\n> b" {
		t.Errorf("indent = %q", got)
	}
}
