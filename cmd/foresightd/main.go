// Command foresightd serves the Foresight demo UI (paper Figure 1):
// insight carousels with click-to-focus exploration and per-class
// overview heat maps, backed by the query engine over a CSV file or a
// built-in demo dataset.
//
// Usage:
//
//	foresightd -data oecd              # built-in demo dataset
//	foresightd -data mydata.csv -addr :8080 -approx
//	foresightd -data oecd -debug-addr :8601   # pprof + /metrics sidecar
//
// The main listener exposes Prometheus metrics at /metrics, recent
// slow-request traces at /api/debug/traces, and operational stats at
// /api/stats. With -debug-addr a second listener additionally serves
// net/http/pprof under /debug/pprof/ (kept off the main port so
// profiling endpoints are never exposed to UI traffic).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"time"

	"foresight"
	"foresight/internal/obs"
	"foresight/internal/server"
	"foresight/internal/sketch"
)

// version is stamped via -ldflags "-X main.version=..." in release
// builds; "dev" otherwise.
var version = "dev"

func main() {
	data := flag.String("data", "oecd", "CSV path or demo dataset name (oecd|parkinson|imdb)")
	addr := flag.String("addr", ":8600", "listen address")
	debugAddr := flag.String("debug-addr", "", "optional second listen address for /debug/pprof/ and /metrics")
	k := flag.Int("k", 5, "insights per carousel")
	approx := flag.Bool("approx", false, "answer queries from sketches")
	workers := flag.Int("workers", 0, "parallel candidate-scoring workers (0 = GOMAXPROCS)")
	cache := flag.Bool("cache", true, "memoize insight scores across queries")
	seed := flag.Int64("seed", 42, "seed for demo datasets / sketches")
	slowMS := flag.Int("slow-ms", 0, "only record request traces at least this slow (0 = record all)")
	quiet := flag.Bool("quiet", false, "suppress per-request JSON logs on stderr")
	flag.Parse()

	reg := obs.NewRegistry()
	// Sketch build/merge timings surface as a labeled histogram; the
	// observer is installed before any profile is built so -approx
	// preprocessing is captured too.
	sketchSeconds := reg.HistogramVec("foresight_sketch_seconds",
		"Sketch build/merge phase latency in seconds.", nil, "op")
	sketch.SetTimingObserver(func(op string, d time.Duration) {
		sketchSeconds.With(op).Observe(d.Seconds())
	})

	f, err := loadData(*data, *seed)
	if err != nil {
		log.Fatalf("foresightd: %v", err)
	}
	var profile *foresight.Profile
	if *approx {
		log.Printf("preprocessing sketches for %s...", f.Summary())
		profile = foresight.BuildProfile(f, foresight.ProfileConfig{Seed: *seed, Spearman: true})
	}
	engine, err := foresight.NewEngine(f, foresight.NewRegistry(), profile)
	if err != nil {
		log.Fatalf("foresightd: %v", err)
	}
	engine.SetWorkers(*workers)
	engine.SetCacheEnabled(*cache)

	opts := server.Options{
		Registry:           reg,
		LogWriter:          os.Stderr,
		SlowTraceThreshold: time.Duration(*slowMS) * time.Millisecond,
		Version:            version,
	}
	if *quiet {
		opts.LogWriter = nil
	}
	srv := server.New(engine, *k, *approx, opts)

	if *debugAddr != "" {
		go serveDebug(*debugAddr, reg)
	}
	log.Printf("foresightd %s: serving %s on http://localhost%s (workers=%d cache=%v; /metrics, /api/stats, /api/debug/traces)",
		version, f.Summary(), *addr, engine.Workers(), *cache)
	log.Fatal(http.ListenAndServe(*addr, srv))
}

// serveDebug runs the pprof + metrics sidecar listener. pprof's
// handlers are registered explicitly rather than via the package's
// DefaultServeMux side effect, so importing net/http/pprof never
// leaks profiling routes onto the main server.
func serveDebug(addr string, reg *obs.Registry) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/metrics", reg.Handler())
	log.Printf("foresightd: debug listener on http://localhost%s (pprof at /debug/pprof/)", addr)
	log.Fatal(http.ListenAndServe(addr, mux))
}

func loadData(path string, seed int64) (*foresight.Frame, error) {
	switch strings.ToLower(path) {
	case "":
		return nil, fmt.Errorf("missing -data")
	case "oecd":
		return foresight.OECDDataset(0, seed), nil
	case "parkinson":
		return foresight.ParkinsonDataset(0, seed), nil
	case "imdb":
		return foresight.IMDBDataset(0, seed), nil
	default:
		return foresight.ReadCSVFile(path, "", nil)
	}
}
