// Command foresightd serves the Foresight demo UI (paper Figure 1):
// insight carousels with click-to-focus exploration and per-class
// overview heat maps, backed by the query engine over a CSV file or a
// built-in demo dataset.
//
// Usage:
//
//	foresightd -data oecd              # built-in demo dataset
//	foresightd -data mydata.csv -addr :8080 -approx
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"

	"foresight"
	"foresight/internal/server"
)

func main() {
	data := flag.String("data", "oecd", "CSV path or demo dataset name (oecd|parkinson|imdb)")
	addr := flag.String("addr", ":8600", "listen address")
	k := flag.Int("k", 5, "insights per carousel")
	approx := flag.Bool("approx", false, "answer queries from sketches")
	workers := flag.Int("workers", 0, "parallel candidate-scoring workers (0 = GOMAXPROCS)")
	cache := flag.Bool("cache", true, "memoize insight scores across queries")
	seed := flag.Int64("seed", 42, "seed for demo datasets / sketches")
	flag.Parse()

	f, err := loadData(*data, *seed)
	if err != nil {
		log.Fatalf("foresightd: %v", err)
	}
	var profile *foresight.Profile
	if *approx {
		log.Printf("preprocessing sketches for %s...", f.Summary())
		profile = foresight.BuildProfile(f, foresight.ProfileConfig{Seed: *seed, Spearman: true})
	}
	engine, err := foresight.NewEngine(f, foresight.NewRegistry(), profile)
	if err != nil {
		log.Fatalf("foresightd: %v", err)
	}
	engine.SetWorkers(*workers)
	engine.SetCacheEnabled(*cache)
	srv := server.New(engine, *k, *approx)
	log.Printf("foresightd: serving %s on http://localhost%s (workers=%d cache=%v; stats at /api/stats)",
		f.Summary(), *addr, engine.Workers(), *cache)
	log.Fatal(http.ListenAndServe(*addr, srv))
}

func loadData(path string, seed int64) (*foresight.Frame, error) {
	switch strings.ToLower(path) {
	case "":
		return nil, fmt.Errorf("missing -data")
	case "oecd":
		return foresight.OECDDataset(0, seed), nil
	case "parkinson":
		return foresight.ParkinsonDataset(0, seed), nil
	case "imdb":
		return foresight.IMDBDataset(0, seed), nil
	default:
		return foresight.ReadCSVFile(path, "", nil)
	}
}
