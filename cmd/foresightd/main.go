// Command foresightd serves the Foresight demo UI (paper Figure 1):
// insight carousels with click-to-focus exploration and per-class
// overview heat maps, backed by the query engine over a CSV file or a
// built-in demo dataset.
//
// Usage:
//
//	foresightd -data oecd              # built-in demo dataset
//	foresightd -data mydata.csv -addr :8080 -approx
//	foresightd -data oecd -debug-addr :8601   # pprof + /metrics sidecar
//
// The main listener exposes Prometheus metrics at /metrics, recent
// slow-request traces at /api/debug/traces, insight-telemetry sketch
// summaries at /api/debug/insights (score quantiles, hot columns,
// top-k margins per class; see also -query-log-sample and the
// `foresight top` dashboard), and operational stats at /api/stats.
// POST /api/ingest appends row batches live (CSV or JSON;
// the sketch store extends incrementally, bounded by -ingest-queue).
// With -wal-dir, acked batches are durable: a CRC-framed write-ahead
// log (sync policy -fsync/-fsync-interval) plus checkpointed
// snapshots (-checkpoint-rows) let a restart recover every acked row
// and replay the tail; /healthz reports liveness, /readyz flips to
// 200 once recovery completes, and -recover-permissive accepts a
// mid-log-corrupt WAL's valid prefix instead of refusing to start.
// With -debug-addr a second listener additionally serves
// net/http/pprof under /debug/pprof/ (kept off the main port so
// profiling endpoints are never exposed to UI traffic).
//
// The process is lifecycle-safe: every API request runs under
// -request-timeout (504 on expiry, with the engine's workers actually
// released), -max-inflight sheds excess load with 503, the listener
// carries read/write/idle timeouts so slow clients cannot pin
// connections forever, and SIGINT/SIGTERM drain in-flight requests
// (up to -shutdown-grace) before the process exits cleanly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"foresight"
	"foresight/internal/durable"
	"foresight/internal/obs"
	"foresight/internal/server"
	"foresight/internal/sketch"
)

// version is stamped via -ldflags "-X main.version=..." in release
// builds; "dev" otherwise.
var version = "dev"

func main() {
	data := flag.String("data", "oecd", "CSV path or demo dataset name (oecd|parkinson|imdb)")
	addr := flag.String("addr", ":8600", "listen address")
	debugAddr := flag.String("debug-addr", "", "optional second listen address for /debug/pprof/ and /metrics")
	k := flag.Int("k", 5, "insights per carousel")
	approx := flag.Bool("approx", false, "answer queries from sketches")
	workers := flag.Int("workers", 0, "parallel candidate-scoring workers (0 = GOMAXPROCS)")
	buildShards := flag.Int("build-shards", 0, "parallel profile-build shards for startup preprocessing and large ingest batches (0 = sequential, <0 = GOMAXPROCS)")
	cache := flag.Bool("cache", true, "memoize insight scores across queries")
	prune := flag.Bool("prune", true, "bound-based top-k candidate pruning (results are identical either way; off = score every candidate)")
	seed := flag.Int64("seed", 42, "seed for demo datasets / sketches")
	slowMS := flag.Int("slow-ms", 0, "only record request traces at least this slow (0 = record all)")
	quiet := flag.Bool("quiet", false, "suppress per-request JSON logs on stderr")
	requestTimeout := flag.Duration("request-timeout", 5*time.Second, "per-request deadline for API requests; expired requests get 504 and release their workers (0 = no deadline)")
	maxInflight := flag.Int("max-inflight", 256, "maximum concurrently served API requests; excess requests are shed with 503 (0 = unlimited)")
	ingestQueue := flag.Int("ingest-queue", 64, "maximum queued /api/ingest batches; excess batches are shed with 503")
	shutdownGrace := flag.Duration("shutdown-grace", 15*time.Second, "how long SIGINT/SIGTERM waits for in-flight requests to drain before forcing exit")
	queryLogSample := flag.Float64("query-log-sample", 0, "fraction of engine queries logged as structured JSON telemetry lines (0 = off, 1 = every query, 0.01 = every 100th)")
	walDir := flag.String("wal-dir", "", "durability directory for the write-ahead log and snapshots; empty disables durable ingest (acked batches then live only in memory)")
	fsyncMode := flag.String("fsync", "interval", "WAL fsync policy: always (sync before every ack), interval (background timer), off (page cache only)")
	fsyncInterval := flag.Duration("fsync-interval", 100*time.Millisecond, "background WAL flush period under -fsync interval")
	checkpointRows := flag.Int("checkpoint-rows", 50000, "write a snapshot once this many rows accumulated in the WAL since the last one (<0 disables the row trigger)")
	recoverPermissive := flag.Bool("recover-permissive", false, "on mid-log WAL corruption, keep the valid prefix and start instead of refusing (a torn final record is always repaired automatically)")
	flag.Parse()

	reg := obs.NewRegistry()
	obs.SetBuildInfo(reg, version)
	// Profile build/merge timings surface as a labeled histogram; the
	// observer is installed before any profile is built so -approx
	// preprocessing is captured too. server.New registers the same
	// histogram (the registry dedupes by name) and re-installs an
	// equivalent observer, so timings flow to one collector either way.
	buildSeconds := reg.HistogramVec("foresight_profile_build_seconds",
		"Profile build/merge phase latency in seconds, by sketch-layer phase.", nil, "phase")
	sketch.SetTimingObserver(func(op string, d time.Duration) {
		buildSeconds.With(op).Observe(d.Seconds())
	})

	f, err := loadData(*data, *seed)
	if err != nil {
		log.Fatalf("foresightd: %v", err)
	}
	// Pruning needs the sketch profile for its score bounds, so -prune
	// triggers the same preprocessing -approx does (exact queries still
	// read raw data; only the bounds come from the sketches).
	var profile *foresight.Profile
	if *approx || *prune {
		log.Printf("preprocessing sketches for %s...", f.Summary())
		profile = foresight.BuildProfileSharded(f,
			foresight.ProfileConfig{Seed: *seed, Spearman: true}, *buildShards)
	}
	engine, err := foresight.NewEngine(f, foresight.NewRegistry(), profile)
	if err != nil {
		log.Fatalf("foresightd: %v", err)
	}
	engine.SetWorkers(*workers)
	engine.SetBuildShards(*buildShards)
	engine.SetCacheEnabled(*cache)
	engine.SetPruning(*prune)

	// Durable ingest (DESIGN.md §6k): with -wal-dir, every acked ingest
	// batch is write-ahead logged and periodically checkpointed, and
	// startup recovers snapshot + WAL tail into the engine before the
	// server reports ready.
	var durMgr *durable.Manager
	if *walDir != "" {
		policy, err := durable.ParseFsyncPolicy(*fsyncMode)
		if err != nil {
			log.Fatalf("foresightd: %v", err)
		}
		durMgr, err = durable.Open(durable.Options{
			Dir:            *walDir,
			Fsync:          policy,
			FsyncInterval:  *fsyncInterval,
			CheckpointRows: *checkpointRows,
			Permissive:     *recoverPermissive,
			Logf:           log.Printf,
		})
		if err != nil {
			log.Fatalf("foresightd: %v", err)
		}
		durMgr.Instrument(reg)
	}

	opts := server.Options{
		Registry:           reg,
		LogWriter:          os.Stderr,
		SlowTraceThreshold: time.Duration(*slowMS) * time.Millisecond,
		Version:            version,
		RequestTimeout:     *requestTimeout,
		MaxInflight:        *maxInflight,
		IngestQueue:        *ingestQueue,
		QueryLogSample:     *queryLogSample,
	}
	if *quiet {
		opts.LogWriter = nil
	}
	if durMgr != nil {
		opts.StartUnready = true
		opts.Durable = durMgr
	}
	srv := server.New(engine, *k, *approx, opts)

	// Recovery runs concurrently with the listener coming up: queries
	// serve against the pre-replay snapshot immediately, /readyz stays
	// 503 and ingest is rejected until the replay lands. A recovery
	// failure is fatal — starting with silently missing acked rows is
	// worse than not starting (use -recover-permissive to accept a
	// truncated log explicitly).
	if durMgr != nil {
		go func() {
			rec, err := durMgr.Recover(engine)
			if err != nil {
				log.Fatalf("foresightd: WAL recovery: %v", err)
			}
			log.Printf("foresightd: recovered %s: snapshot seq %d (%d rows) + %d replayed batches (%d rows), last seq %d, torn tail %v (%.3fs)",
				*walDir, rec.SnapshotSeq, rec.SnapshotRows, rec.ReplayedBatches, rec.ReplayedRows, rec.LastSeq, rec.TornTailDetected, rec.DurationSeconds)
			srv.SetReady()
		}()
	}

	if *debugAddr != "" {
		go serveDebug(*debugAddr, reg)
	}

	// The listener's own timeouts guard against slow or stalled
	// clients: ReadHeaderTimeout bounds header trickling, WriteTimeout
	// caps the whole response (kept above the request deadline so the
	// engine's 504 path always wins the race), IdleTimeout reaps
	// keep-alive connections.
	writeTimeout := 30 * time.Second
	if *requestTimeout > 0 && *requestTimeout+10*time.Second > writeTimeout {
		writeTimeout = *requestTimeout + 10*time.Second
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       120 * time.Second,
	}

	log.Printf("foresightd %s: serving %s on http://localhost%s (workers=%d cache=%v prune=%v timeout=%v max-inflight=%d; /metrics, /api/stats, /api/debug/traces, /api/debug/insights)",
		version, f.Summary(), *addr, engine.Workers(), *cache, *prune, *requestTimeout, *maxInflight)
	if err := runUntilSignalled(httpSrv, *shutdownGrace); err != nil {
		log.Fatalf("foresightd: %v", err)
	}
	srv.Close() // stop the ingest worker after the listener has drained
	if durMgr != nil {
		if err := durMgr.Close(); err != nil {
			log.Printf("foresightd: closing WAL: %v", err)
		}
	}
	log.Printf("foresightd: shut down cleanly")
}

// runUntilSignalled serves on srv until SIGINT/SIGTERM, then drains
// in-flight requests via Shutdown for up to grace before returning.
// A listener error (port taken, etc.) is returned immediately; a
// drain that outlives the grace period returns the shutdown error so
// the exit status reflects the forced stop.
func runUntilSignalled(srv *http.Server, grace time.Duration) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		return fmt.Errorf("listen on %s: %w", srv.Addr, err)
	case <-ctx.Done():
	}
	stop() // restore default signal behavior: a second signal kills immediately
	log.Printf("foresightd: signal received, draining in-flight requests (grace %v)...", grace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	return nil
}

// serveDebug runs the pprof + metrics sidecar listener. pprof's
// handlers are registered explicitly rather than via the package's
// DefaultServeMux side effect, so importing net/http/pprof never
// leaks profiling routes onto the main server. A sidecar listen
// failure (port already taken) is logged and absorbed — the main
// server keeps serving; profiling is an accessory, not a dependency.
func serveDebug(addr string, reg *obs.Registry) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/metrics", reg.Handler())
	log.Printf("foresightd: debug listener on http://localhost%s (pprof at /debug/pprof/)", addr)
	srv := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Printf("foresightd: debug listener on %s failed: %v (continuing without pprof sidecar)", addr, err)
	}
}

func loadData(path string, seed int64) (*foresight.Frame, error) {
	switch strings.ToLower(path) {
	case "":
		return nil, fmt.Errorf("missing -data")
	case "oecd":
		return foresight.OECDDataset(0, seed), nil
	case "parkinson":
		return foresight.ParkinsonDataset(0, seed), nil
	case "imdb":
		return foresight.IMDBDataset(0, seed), nil
	default:
		return foresight.ReadCSVFile(path, "", nil)
	}
}
