package foresight_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"foresight"
)

// TestEndToEndOECD is the integration test for the full public flow:
// load → profile → carousels → focus → recommendations → overview →
// render → save/load.
func TestEndToEndOECD(t *testing.T) {
	f := foresight.OECDDataset(0, 42) // paper-scale 35×25
	if f.Rows() != 35 || f.Cols() != 25 {
		t.Fatalf("OECD shape = %d×%d", f.Rows(), f.Cols())
	}
	profile := foresight.BuildProfile(f, foresight.ProfileConfig{Seed: 7, Spearman: true})
	engine, err := foresight.NewEngine(f, foresight.NewRegistry(), profile)
	if err != nil {
		t.Fatal(err)
	}
	carousels, err := engine.Carousels(5, false)
	if err != nil {
		t.Fatal(err)
	}
	// OECD's only categorical column is the Country identifier, which
	// the engine rightly excludes, so only the numeric classes fire.
	if len(carousels) < 7 {
		t.Fatalf("only %d carousels", len(carousels))
	}
	// The headline discovery of §4.1: WorkingLongHours ↔
	// TimeDevotedToLeisure should be among the top correlation
	// insights, with negative sign.
	var wlhTdl *foresight.Insight
	for _, r := range carousels {
		if r.Class != "linear" {
			continue
		}
		for i := range r.Insights {
			in := r.Insights[i]
			if contains(in.Attrs, "WorkingLongHours") && contains(in.Attrs, "TimeDevotedToLeisure") {
				wlhTdl = &in
			}
		}
	}
	if wlhTdl == nil {
		t.Fatal("WLH↔TDTL not in top-5 correlations")
	}
	if wlhTdl.Raw >= 0 {
		t.Errorf("WLH↔TDTL should be negative, got %v", wlhTdl.Raw)
	}

	// Focus it; recommendations update.
	session := foresight.NewSession(engine, 5, false)
	session.FocusOn(*wlhTdl)
	updated, err := session.Recommendations()
	if err != nil {
		t.Fatal(err)
	}
	if len(updated) == 0 {
		t.Fatal("no recommendations after focus")
	}

	// Overview (Figure 2) and its SVG.
	ov, err := engine.Overview("linear", "", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(ov.RowAttrs) != 24 || !ov.Symmetric {
		t.Fatalf("overview shape: %d attrs, symmetric=%v", len(ov.RowAttrs), ov.Symmetric)
	}
	svg := foresight.CorrelogramSVG(ov, "OECD pairwise correlations")
	if !strings.HasPrefix(svg, "<svg") {
		t.Error("correlogram SVG malformed")
	}

	// Render the focused insight both ways.
	if svg, err := foresight.RenderSVG(f, *wlhTdl); err != nil || !strings.HasPrefix(svg, "<svg") {
		t.Errorf("RenderSVG: %v", err)
	}
	if txt, err := foresight.RenderASCII(f, *wlhTdl); err != nil || txt == "" {
		t.Errorf("RenderASCII: %v", err)
	}

	// Save / load session round trip.
	var buf bytes.Buffer
	if err := session.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := foresight.LoadSession(&buf, engine)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored.Focus) != 1 {
		t.Error("restored focus lost")
	}
}

func TestPublicCSVAndQuery(t *testing.T) {
	csv := "a,b,cat\n1,2,x\n2,4,y\n3,6,x\n4,8.1,y\n5,9.9,x\n"
	f, err := foresight.ReadCSV(strings.NewReader(csv), "mini", nil)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := foresight.NewEngine(f, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Execute(foresight.Query{Classes: []string{"linear"}, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Insights[0].Score < 0.99 {
		t.Errorf("a,b nearly perfectly correlated, got %+v", res)
	}
}

func TestPublicConstructorsAndSimilarity(t *testing.T) {
	col := foresight.NewNumericColumn("v", []float64{1, 2, math.NaN()})
	cat := foresight.NewCategoricalColumn("c", []string{"a", "", "b"})
	f, err := foresight.NewFrame("t", col, cat)
	if err != nil {
		t.Fatal(err)
	}
	if f.Rows() != 3 {
		t.Error("frame shape wrong")
	}
	a := foresight.Insight{Class: "linear", Metric: "pearson", Attrs: []string{"x", "y"}, Score: 1}
	if foresight.Similarity(a, a) != 1 {
		t.Error("self similarity should be 1")
	}
}

func TestDemoDatasets(t *testing.T) {
	if f := foresight.ParkinsonDataset(500, 1); f.Rows() != 500 || f.Cols() != 50 {
		t.Error("parkinson dataset shape wrong")
	}
	if f := foresight.IMDBDataset(500, 1); f.Rows() != 500 || f.Cols() != 28 {
		t.Error("imdb dataset shape wrong")
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

func TestFacadePartitionedAndPersistence(t *testing.T) {
	f := foresight.IMDBDataset(2000, 3)
	cfg := foresight.ProfileConfig{Seed: 5, K: 64}
	p := foresight.BuildProfilePartitioned(f, cfg, 3)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := foresight.LoadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := foresight.NewEngine(f, nil, loaded)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Execute(foresight.Query{Classes: []string{"linear"}, K: 3, Approx: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || len(res[0].Insights) != 3 {
		t.Fatalf("approx query over loaded partitioned profile: %+v", res)
	}
	// Sketch-only rendering of the top insight.
	svg, err := foresight.RenderSVGFromProfile(loaded, res[0].Insights[0])
	if err != nil || !strings.HasPrefix(svg, "<svg") {
		t.Errorf("RenderSVGFromProfile: %v", err)
	}
}

func TestFacadeCustomRegistry(t *testing.T) {
	reg := foresight.NewEmptyRegistry()
	if err := reg.Register(foresight.NewNonlinearDependenceClass(8)); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(foresight.NewHeavyHittersClassWithK(5)); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(foresight.NewOutliersClassWithDetector(nil)); err != nil {
		t.Fatal(err)
	}
	if got := len(foresight.BuiltinClasses()); got != 12 {
		t.Errorf("builtin classes = %d, want 12", got)
	}
	f := foresight.IMDBDataset(1500, 4)
	engine, err := foresight.NewEngine(f, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Execute(foresight.Query{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) < 2 {
		t.Errorf("custom registry produced %d result groups", len(res))
	}
}

func TestFacadeParallelWorkers(t *testing.T) {
	f := foresight.OECDDataset(0, 42)
	engine, err := foresight.NewEngine(f, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	engine.SetWorkers(0) // GOMAXPROCS
	res, err := engine.Execute(foresight.Query{Classes: []string{"linear"}, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Error("parallel execute through facade broken")
	}
}

// TestDrillDownWorkflow exercises §2's second level of exploration:
// constrain the data, re-run insight queries on the subset.
func TestDrillDownWorkflow(t *testing.T) {
	f := foresight.ParkinsonDataset(2000, 11)
	// Constrain to the PD cohort.
	keep, err := f.WhereCategory("Cohort", "PD")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := f.FilterRows(keep)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Rows() >= f.Rows() || sub.Rows() < 500 {
		t.Fatalf("PD subset rows = %d", sub.Rows())
	}
	engine, err := foresight.NewEngine(sub, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Within one cohort the Cohort column is constant, so it yields no
	// dependence insights; motor-score correlations remain.
	res, err := engine.Execute(foresight.Query{Classes: []string{"dependence"}, Fixed: []string{"Cohort"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("constant cohort should yield no dependence insights, got %d", len(res))
	}
	lin, err := engine.Execute(foresight.Query{Classes: []string{"linear"}, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(lin) != 1 || lin[0].Insights[0].Score < 0.5 {
		t.Errorf("drill-down correlations missing: %+v", lin)
	}
	// Numeric range drill-down.
	keepAge, err := f.WhereNumeric("AgeAtVisit", 70, 200)
	if err != nil {
		t.Fatal(err)
	}
	old, err := f.FilterRows(keepAge)
	if err != nil {
		t.Fatal(err)
	}
	if old.Rows() == 0 || old.Rows() >= f.Rows() {
		t.Errorf("age drill-down rows = %d", old.Rows())
	}
}

func TestNormalityClassThroughFacade(t *testing.T) {
	reg := foresight.NewRegistry()
	if err := reg.Register(foresight.NewNormalityClass()); err != nil {
		t.Fatal(err)
	}
	f := foresight.OECDDataset(0, 42)
	engine, err := foresight.NewEngine(f, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Execute(foresight.Query{Classes: []string{"normality"}})
	if err != nil {
		t.Fatal(err)
	}
	// TimeDevotedToLeisure is planted normal (one of several normal
	// indicators); its normality score must be high, and the planted
	// left-skewed SelfReportedHealth must rank below it.
	score := func(attr string) float64 {
		for _, in := range res[0].Insights {
			if in.Attrs[0] == attr {
				return in.Score
			}
		}
		return -1
	}
	if s := score("TimeDevotedToLeisure"); s < 0.5 {
		t.Errorf("TDTL normality = %v, want high", s)
	}
	if score("SelfReportedHealth") >= score("TimeDevotedToLeisure") {
		t.Error("left-skewed SRH should be less normal than TDTL")
	}
}
