// Quickstart: load a small CSV, let Foresight recommend insights, and
// render the strongest one. This is the minimal end-to-end use of the
// public API.
package main

import (
	"fmt"
	"log"
	"strings"

	"foresight"
)

const salesCSV = `region,channel,revenue,cost,units,satisfaction
north,online,120,80,301,4.1
north,retail,95,70,240,3.9
south,online,230,120,520,4.4
south,retail,150,100,350,4.0
east,online,310,160,690,4.6
east,retail,180,110,410,4.1
west,online,90,60,220,3.8
west,retail,60,45,150,3.6
north,online,140,88,330,4.2
south,online,260,130,560,4.5
east,online,330,170,720,4.7
west,retail,70,50,170,3.7
north,retail,100,74,255,3.9
south,retail,160,105,365,4.1
east,retail,195,118,440,4.2
west,online,105,66,245,3.9
`

func main() {
	// 1. Load data. ReadCSV infers numeric vs categorical columns.
	f, err := foresight.ReadCSV(strings.NewReader(salesCSV), "sales", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("loaded:", f.Summary())

	// 2. Build an engine with the twelve built-in insight classes.
	engine, err := foresight.NewEngine(f, foresight.NewRegistry(), nil)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Ask for the top-3 insights of every class (the Figure-1 view).
	carousels, err := engine.Carousels(3, false)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range carousels {
		fmt.Printf("\n%s (ranked by %s):\n", c.Class, c.Metric)
		for i, in := range c.Insights {
			fmt.Printf("  %d. %-28s score=%.3f\n", i+1, strings.Join(in.Attrs, ", "), in.Score)
		}
	}

	// 4. Run a targeted insight query: what correlates with revenue?
	res, err := engine.Execute(foresight.Query{
		Classes: []string{"linear"},
		Fixed:   []string{"revenue"},
		K:       3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nstrongest linear partners of revenue:")
	for _, in := range res[0].Insights {
		fmt.Printf("  %-28s rho=%+.3f\n", strings.Join(in.Attrs, ", "), in.Raw)
	}

	// 5. Render the top revenue insight as ASCII (SVG also available).
	panel, err := foresight.RenderASCII(f, res[0].Insights[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n" + panel)
}
