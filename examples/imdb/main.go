// IMDB exploration: the paper's §4.2 movie questions — "What factors
// correlate highly with a film's profitability? How are critical
// responses and commercial success interrelated?" — answered with
// insight queries over the synthetic 5000×28 movie dataset, using the
// sketch-backed approximate path to show interactive exploration.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"foresight"
)

func main() {
	f := foresight.IMDBDataset(0, 7)
	fmt.Println("loaded:", f.Summary())

	// Preprocess sketches once; all queries below run from the store.
	start := time.Now()
	profile := foresight.BuildProfile(f, foresight.ProfileConfig{Seed: 1, Spearman: true})
	fmt.Printf("sketch preprocessing: %v\n", time.Since(start).Round(time.Millisecond))
	engine, err := foresight.NewEngine(f, foresight.NewRegistry(), profile)
	if err != nil {
		log.Fatal(err)
	}

	// Q1: what moves with profitability? Gross and BudgetRecovery are
	// the two revenue-side columns; monotone (Spearman) relationships
	// are the right lens for heavy-tailed money data.
	fmt.Println("\nQ1. What factors correlate with profitability?")
	for _, target := range []string{"Gross", "BudgetRecovery"} {
		res, err := engine.Execute(foresight.Query{
			Classes: []string{"monotonic"}, Fixed: []string{target}, K: 5, Approx: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  top monotone partners of %s:\n", target)
		for _, in := range res[0].Insights {
			fmt.Printf("    %-44s rho_s=%+.3f\n", strings.Join(in.Attrs, " ↔ "), in.Raw)
		}
	}

	// Q2: critics vs commerce. Fix IMDBScore and NumCriticReviews and
	// look at their linear partners among the commercial metrics.
	fmt.Println("\nQ2. How are critical response and commercial success interrelated?")
	for _, target := range []string{"IMDBScore", "NumCriticReviews"} {
		res, err := engine.Execute(foresight.Query{
			Classes: []string{"linear"}, Fixed: []string{target}, K: 4, Approx: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  linear partners of %s:\n", target)
		for _, in := range res[0].Insights {
			fmt.Printf("    %-44s rho=%+.3f\n", strings.Join(in.Attrs, " ↔ "), in.Raw)
		}
	}

	// Q3: which attributes are dominated by a few heavy hitters?
	// (Directors and languages are; genres less so.)
	fmt.Println("\nQ3. Heavy-hitter structure of the categorical attributes:")
	res, err := engine.Execute(foresight.Query{Classes: []string{"heavyhitters"}, Approx: true})
	if err != nil {
		log.Fatal(err)
	}
	for _, in := range res[0].Insights {
		fmt.Printf("    %-16s RelFreq(top-3)=%.3f\n", in.Attrs[0], in.Score)
	}

	// Q4: money columns are heavy-tailed — confirm via the heavy-tails
	// carousel, filtered to currency-tagged attributes (metadata
	// constraint from the paper's future-work list).
	fmt.Println("\nQ4. Heavy tails among currency attributes (metadata-filtered query):")
	res, err = engine.Execute(foresight.Query{
		Classes: []string{"heavytails"}, Semantic: "currency", K: 5, Approx: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, in := range res[0].Insights {
		fmt.Printf("    %-16s kurtosis=%.1f\n", in.Attrs[0], in.Score)
	}

	// A range-filtered query, as in §2.1: moderately correlated pairs
	// only (filter out the trivially high ones).
	fmt.Println("\nQ5. Moderately correlated pairs (0.4 ≤ |rho| ≤ 0.7):")
	res, err = engine.Execute(foresight.Query{
		Classes: []string{"linear"}, MinScore: 0.4, MaxScore: 0.7, K: 5, Approx: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if len(res) > 0 {
		for _, in := range res[0].Insights {
			fmt.Printf("    %-44s rho=%+.3f\n", strings.Join(in.Attrs, " ↔ "), in.Raw)
		}
	}
}
