// Streaming preprocessing: §3 of the paper builds on *mergeable*
// sketches — per-partition summaries that combine into a summary of
// the whole. This example preprocesses a large table in four row
// partitions (as a chunked loader or four shards would), merges the
// partial sketch stores, persists the result, reloads it in a "new
// session", and answers insight queries without ever touching the raw
// data again.
package main

import (
	"bytes"
	"fmt"
	"log"
	"strings"
	"time"

	"foresight"
)

func main() {
	// A 50k×40 table standing in for data that arrives in chunks.
	f := foresight.IMDBDataset(50000, 9)
	fmt.Println("dataset:", f.Summary())

	// k controls estimate error (sd ≈ π·√(p(1−p)/k) per pair). Ranked
	// top-k lists amplify unlucky draws (selection effect), so use a
	// generous width when the store feeds recommendations directly.
	cfg := foresight.ProfileConfig{Seed: 1, K: 384}

	// 1. Partitioned preprocessing: four partial sketch passes, merged.
	start := time.Now()
	profile := foresight.BuildProfilePartitioned(f, cfg, 4)
	fmt.Printf("partitioned preprocessing (4 chunks): %v\n", time.Since(start).Round(time.Millisecond))

	// 2. Persist the store — preprocessing happens once per dataset.
	var store bytes.Buffer
	if err := profile.Save(&store); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("persisted sketch store: %d KB (raw data would be ≈%d KB)\n",
		store.Len()/1024, f.Rows()*f.Cols()*8/1024)

	// 3. A later session reloads the store...
	reloaded, err := foresight.LoadProfile(&store)
	if err != nil {
		log.Fatal(err)
	}
	engine, err := foresight.NewEngine(f, foresight.NewRegistry(), reloaded)
	if err != nil {
		log.Fatal(err)
	}

	// ...and explores interactively from sketches alone.
	start = time.Now()
	res, err := engine.Execute(foresight.Query{Classes: []string{"linear"}, K: 5, Approx: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop correlations from the reloaded store (%v):\n", time.Since(start).Round(time.Millisecond))
	for _, in := range res[0].Insights {
		fmt.Printf("  %-40s rho=%+.3f\n", strings.Join(in.Attrs, " ↔ "), in.Raw)
	}

	start = time.Now()
	hh, err := engine.Execute(foresight.Query{Classes: []string{"heavyhitters"}, K: 3, Approx: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nheavy-hitter attributes (%v):\n", time.Since(start).Round(time.Millisecond))
	for _, in := range hh[0].Insights {
		fmt.Printf("  %-20s RelFreq(top-3)=%.3f\n", in.Attrs[0], in.Score)
	}

	// 4. Even the pixels can come from sketches: render the top
	// correlation insight without raw-data access.
	svg, err := foresight.RenderSVGFromProfile(reloaded, res[0].Insights[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsketch-only SVG of the top insight: %d bytes\n", len(svg))
}
