// OECD walkthrough: a scripted replay of the paper's §4.1 usage
// scenario on the synthetic OECD well-being dataset (35 countries ×
// 25 indicators). Each step mirrors one sentence of the narrative and
// prints what the analyst would see.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"foresight"
)

func main() {
	// "The analyst loads the OECD dataset in Foresight..."
	f := foresight.OECDDataset(0, 42)
	fmt.Println("loaded:", f.Summary())
	engine, err := foresight.NewEngine(f, foresight.NewRegistry(), nil)
	if err != nil {
		log.Fatal(err)
	}
	session := foresight.NewSession(engine, 5, false)

	// "...and eyeballs various insights displayed in the carousels."
	carousels, err := session.Recommendations()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n-- step 1: initial carousels (top insight per class) --")
	for _, c := range carousels {
		if len(c.Insights) > 0 {
			in := c.Insights[0]
			fmt.Printf("  %-14s %-50s %.3f\n", c.Class, strings.Join(in.Attrs, ", "), in.Score)
		}
	}

	// "She notes instantly that Working Long Hours and Time Devoted To
	// Leisure have a strong negative correlation, one of the top-ranked
	// correlation insights."
	var focus foresight.Insight
	for _, c := range carousels {
		if c.Class != "linear" {
			continue
		}
		for _, in := range c.Insights {
			if has(in, "WorkingLongHours") && has(in, "TimeDevotedToLeisure") {
				focus = in
			}
		}
	}
	if focus.Class == "" {
		log.Fatal("scenario broke: WLH↔TDTL not recommended")
	}
	fmt.Printf("\n-- step 2: discovery — %s (rho=%+.3f) --\n",
		strings.Join(focus.Attrs, " ↔ "), focus.Raw)

	// "Encouraged by this quick discovery, she brings this insight into
	// focus by clicking on it. Foresight updates its recommendations..."
	session.FocusOn(focus)
	updated, err := session.Recommendations()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n-- step 3: focused; correlation carousel re-ranked around the focus --")
	for _, c := range updated {
		if c.Class != "linear" {
			continue
		}
		for i, in := range c.Insights {
			fmt.Printf("  %d. %-50s %+.3f\n", i+1, strings.Join(in.Attrs, " ↔ "), in.Raw)
		}
	}

	// "...explores the newly recommended correlations through multiple
	// ranking metrics such as Pearson and Spearman, and is surprised to
	// learn that Time Devoted To Leisure has no correlation with Self
	// Reported Health."
	pearson := pairScore(engine, "linear", "pearson", "TimeDevotedToLeisure", "SelfReportedHealth")
	spearman := pairScore(engine, "monotonic", "spearman", "TimeDevotedToLeisure", "SelfReportedHealth")
	fmt.Printf("\n-- step 4: TDTL vs SelfReportedHealth: pearson=%+.3f spearman=%+.3f (≈ no correlation) --\n",
		pearson, spearman)

	// "The univariate distributional insight classes show that TDTL is
	// Normal while SRH is left-skewed."
	reg := engine.Registry()
	skewClass, _ := reg.Lookup("skew")
	tdtl, _ := skewClass.Score(f, []string{"TimeDevotedToLeisure"}, "")
	srh, _ := skewClass.Score(f, []string{"SelfReportedHealth"}, "")
	fmt.Printf("\n-- step 5: distributions — TDTL skew=%+.3f (≈normal), SRH skew=%+.3f (left-skewed) --\n",
		tdtl.Raw, srh.Raw)
	panel, err := foresight.RenderASCII(f, srh)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(panel)

	// "She clicks on the distribution of SRH, adding it as a focal
	// insight. Foresight recommends a new set of correlated attributes
	// and she finds that Life Satisfaction and SRH are highly
	// correlated."
	session.FocusOn(srh)
	again, err := session.Recommendations()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n-- step 6: after focusing SRH, correlation recommendations include --")
	for _, c := range again {
		if c.Class != "linear" {
			continue
		}
		for i, in := range c.Insights {
			marker := ""
			if has(in, "LifeSatisfaction") && has(in, "SelfReportedHealth") {
				marker = "   ← the scenario's final discovery"
			}
			fmt.Printf("  %d. %-50s %+.3f%s\n", i+1, strings.Join(in.Attrs, " ↔ "), in.Raw, marker)
		}
	}

	// "...our analyst saves the current Foresight state to revisit
	// later and to share with her colleagues."
	path := "oecd_session.json"
	file, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := session.Save(file); err != nil {
		log.Fatal(err)
	}
	file.Close()
	fmt.Printf("\n-- step 7: session saved to %s (focus: %d insights) --\n", path, len(session.Focus))
}

func has(in foresight.Insight, attr string) bool {
	for _, a := range in.Attrs {
		if a == attr {
			return true
		}
	}
	return false
}

// pairScore runs a fixed-pair query and returns the signed metric (0
// when the pair was filtered as undefined).
func pairScore(engine *foresight.Engine, class, metric string, a, b string) float64 {
	res, err := engine.Execute(foresight.Query{Classes: []string{class}, Metric: metric, Fixed: []string{a, b}})
	if err != nil || len(res) == 0 || len(res[0].Insights) == 0 {
		return 0
	}
	return res[0].Insights[0].Raw
}
