// Parkinson exploration: clinical-style analysis of the synthetic
// PPMI-like dataset (2000 patients × 50 columns, §4.2). Shows the
// dependence, segmentation and outlier insight classes doing the kind
// of cohort analysis the paper motivates, plus a custom plug-in
// insight class (the §2.2 extensibility point).
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"foresight"
)

func main() {
	f := foresight.ParkinsonDataset(0, 11)
	fmt.Println("loaded:", f.Summary())
	reg := foresight.NewRegistry()

	// Plug in a custom insight class before building the engine: the
	// fraction of missing cells per column ("completeness"), something
	// a clinician checks first.
	if err := reg.Register(missingnessClass{}); err != nil {
		log.Fatal(err)
	}
	engine, err := foresight.NewEngine(f, reg, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Which numeric measures does the cohort explain best?
	fmt.Println("\n1. Cohort-dependent measures (η², dependence class):")
	res, err := engine.Execute(foresight.Query{
		Classes: []string{"dependence"}, Fixed: []string{"Cohort"}, K: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, in := range res[0].Insights {
		fmt.Printf("   %-24s eta2=%.3f\n", in.Attrs[0], in.Score)
	}

	// Does the cohort segment the motor-score plane?
	fmt.Println("\n2. Cohort segmentation of score scatters (silhouette):")
	res, err = engine.Execute(foresight.Query{
		Classes: []string{"segmentation"}, Fixed: []string{"Cohort"}, K: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, in := range res[0].Insights {
		fmt.Printf("   %-44s silhouette=%.3f\n", strings.Join(in.Attrs[:2], " × "), in.Score)
	}

	// Outliers in biomarkers (planted in CRP_Inflammation).
	fmt.Println("\n3. Outlier-heavy measurements (box-plot class):")
	res, err = engine.Execute(foresight.Query{Classes: []string{"outliers"}, K: 4})
	if err != nil {
		log.Fatal(err)
	}
	for _, in := range res[0].Insights {
		fmt.Printf("   %-24s mean outlier distance=%.1f sd (n=%d)\n",
			in.Attrs[0], in.Score, int(in.Details["count"]))
	}
	panel, err := foresight.RenderASCII(f, res[0].Insights[0])
	if err == nil {
		fmt.Println("\n" + panel)
	}

	// The custom class at work: most-missing columns first.
	fmt.Println("4. Data completeness (custom plug-in class):")
	res, err = engine.Execute(foresight.Query{Classes: []string{"missingness"}, K: 4})
	if err != nil {
		log.Fatal(err)
	}
	for _, in := range res[0].Insights {
		fmt.Printf("   %-24s missing=%.1f%%\n", in.Attrs[0], 100*in.Score)
	}
}

// missingnessClass ranks columns by their fraction of missing cells —
// a minimal example of the paper's "plug in new insight classes"
// extension point. It supports both exact and sketch-store scoring.
type missingnessClass struct{}

func (missingnessClass) Name() string               { return "missingness" }
func (missingnessClass) Description() string        { return "Columns with many missing values" }
func (missingnessClass) Arity() int                 { return 1 }
func (missingnessClass) Metrics() []string          { return []string{"fraction"} }
func (missingnessClass) VisKind() foresight.VisKind { return "histogram" }

func (missingnessClass) Candidates(f *foresight.Frame) [][]string {
	var out [][]string
	for _, name := range f.Names() {
		out = append(out, []string{name})
	}
	return out
}

func (missingnessClass) Score(f *foresight.Frame, attrs []string, metric string) (foresight.Insight, error) {
	if len(attrs) != 1 {
		return foresight.Insight{}, fmt.Errorf("missingness wants 1 attribute")
	}
	col, ok := f.Lookup(attrs[0])
	if !ok {
		return foresight.Insight{}, fmt.Errorf("no column %q", attrs[0])
	}
	frac := float64(col.Missing()) / math.Max(1, float64(col.Len()))
	if frac == 0 {
		frac = math.NaN() // complete columns carry no insight; drop them
	}
	return foresight.Insight{
		Class: "missingness", Metric: "fraction", Attrs: attrs,
		Score: frac, Raw: frac, Vis: "histogram",
	}, nil
}

func (missingnessClass) ScoreApprox(p *foresight.Profile, attrs []string, metric string) (foresight.Insight, error) {
	return foresight.Insight{}, fmt.Errorf("missingness: exact only")
}
