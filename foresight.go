// Package foresight is the public API of the Foresight visual-insight
// recommendation engine, a from-scratch Go reproduction of
// "Foresight: Recommending Visual Insights" (Demiralp, Haas,
// Parthasarathy, Pedapati; VLDB 2017).
//
// Foresight helps an analyst explore the *space of insights* of a
// tabular dataset instead of the space of data dimensions and visual
// encodings. The typical flow:
//
//	f, _ := foresight.ReadCSVFile("data.csv", "", nil)
//	profile := foresight.BuildProfile(f, foresight.ProfileConfig{Seed: 1})
//	engine, _ := foresight.NewEngine(f, foresight.NewRegistry(), profile)
//	carousels, _ := engine.Carousels(5, true)   // Figure-1 view
//	overview, _ := engine.Overview("linear", "", true) // Figure-2 view
//	session := foresight.NewSession(engine, 5, true)
//	session.FocusOn(carousels[0].Insights[0])
//	updated, _ := session.Recommendations()
//
// Everything here is a thin re-export of the internal packages; see
// DESIGN.md for the module map.
package foresight

import (
	"io"

	"foresight/internal/core"
	"foresight/internal/datagen"
	"foresight/internal/frame"
	"foresight/internal/query"
	"foresight/internal/sketch"
	"foresight/internal/stats"
	"foresight/internal/viz"
)

// Data model.
type (
	// Frame is an immutable columnar table (the paper's matrix A).
	Frame = frame.Frame
	// Column is a read-only view of one attribute.
	Column = frame.Column
	// NumericColumn holds float64 cells (NaN = missing).
	NumericColumn = frame.NumericColumn
	// CategoricalColumn holds dictionary-encoded string cells.
	CategoricalColumn = frame.CategoricalColumn
	// Metadata annotates an attribute (semantic type, unit, docs).
	Metadata = frame.Metadata
	// SemanticType classifies what an attribute measures.
	SemanticType = frame.SemanticType
	// ReadCSVOptions controls CSV ingestion and type inference.
	ReadCSVOptions = frame.ReadCSVOptions
	// RowBatch is a batch of rows for live ingest (Frame.AppendRows,
	// Engine.Ingest).
	RowBatch = frame.RowBatch
)

// Insight framework (the paper's §2).
type (
	// Insight is one scored instance of an insight class.
	Insight = core.Insight
	// Class is a pluggable insight class.
	Class = core.Class
	// Registry holds the active insight classes.
	Registry = core.Registry
	// VisKind names an insight's preferred visualization.
	VisKind = core.VisKind
)

// Sketching layer (the paper's §3).
type (
	// Profile is the preprocessed sketch store for one Frame.
	Profile = sketch.DatasetProfile
	// ProfileConfig sizes the sketches built during preprocessing.
	ProfileConfig = sketch.ProfileConfig
)

// Exploration engine (the paper's §2.1 / contribution iii).
type (
	// Query is one insight query (top-k, fixed attrs, score range).
	Query = query.Query
	// Result groups the insights returned for one class.
	Result = query.Result
	// Engine executes insight queries over one dataset.
	Engine = query.Engine
	// Overview is a per-class global view (Figure 2).
	Overview = query.Overview
	// Session is an exploration session with focus insights.
	Session = query.Session
	// CacheStats is a snapshot of the engine's memoized scoring cache
	// (hits, misses, entries, generation).
	CacheStats = query.CacheStats
	// IngestResult reports one applied live-ingest batch (rows added,
	// new total, new cache generation).
	IngestResult = query.IngestResult
)

// OutlierDetector configures the outlier insight class.
type OutlierDetector = stats.OutlierDetector

// NewFrame builds a Frame from columns; see NewNumericColumn and
// NewCategoricalColumn.
func NewFrame(name string, cols ...Column) (*Frame, error) { return frame.New(name, cols...) }

// NewNumericColumn builds a numeric column (NaN = missing).
func NewNumericColumn(name string, values []float64) *NumericColumn {
	return frame.NewNumericColumn(name, values)
}

// NewCategoricalColumn builds a categorical column ("" = missing).
func NewCategoricalColumn(name string, values []string) *CategoricalColumn {
	return frame.NewCategoricalColumn(name, values)
}

// ReadCSV ingests a CSV stream with type inference.
func ReadCSV(r io.Reader, name string, opts *ReadCSVOptions) (*Frame, error) {
	return frame.ReadCSV(r, name, opts)
}

// ReadCSVFile ingests a CSV file with type inference.
func ReadCSVFile(path, name string, opts *ReadCSVOptions) (*Frame, error) {
	return frame.ReadCSVFile(path, name, opts)
}

// NewRegistry returns the twelve built-in insight classes; extend it
// with Registry.Register (the paper's plug-in point).
func NewRegistry() *Registry { return core.NewRegistry() }

// NewEmptyRegistry returns a registry with no classes, for fully
// custom class sets.
func NewEmptyRegistry() *Registry { return core.NewEmptyRegistry() }

// BuiltinClasses returns fresh instances of the twelve built-in
// insight classes, for assembling custom registries.
func BuiltinClasses() []Class { return core.BuiltinClasses() }

// NewNonlinearDependenceClass returns the optional numeric×numeric
// general-dependence class (normalized binned mutual information),
// which detects non-monotone relationships such as y = x² that both
// Pearson and Spearman miss. Register it explicitly:
//
//	reg := foresight.NewRegistry()
//	_ = reg.Register(foresight.NewNonlinearDependenceClass(0))
func NewNonlinearDependenceClass(bins int) Class {
	return core.NewNonlinearDependenceClass(bins)
}

// NewOutliersClassWithDetector returns the outlier insight class with
// a custom detection algorithm (the paper's "user-configurable
// outlier-detection algorithm"). Use it with NewEmptyRegistry or after
// removing the default class.
func NewOutliersClassWithDetector(det OutlierDetector) Class {
	return core.NewOutliersClass(det)
}

// NewHeavyHittersClassWithK returns the heterogeneous-frequency class
// with a custom k for the RelFreq(k, c) metric.
func NewHeavyHittersClassWithK(k int) Class { return core.NewHeavyHittersClass(k) }

// NewNormalityClass returns the optional normality insight class
// (Jarque–Bera-based), surfacing "this attribute is approximately
// normal" insights as the §4.1 scenario does.
func NewNormalityClass() Class { return core.NewNormalityClass() }

// BuildProfile preprocesses a Frame into the sketch store that powers
// approximate (interactive-speed) insight queries.
func BuildProfile(f *Frame, cfg ProfileConfig) *Profile { return sketch.BuildProfile(f, cfg) }

// BuildProfilePartitioned preprocesses in `parts` row partitions and
// merges the partial sketches — §3's mergeable-sketch pipeline.
// Functionally equivalent to BuildProfile (rank projections excepted;
// see the sketch package docs).
func BuildProfilePartitioned(f *Frame, cfg ProfileConfig, parts int) *Profile {
	return sketch.BuildProfilePartitioned(f, cfg, parts)
}

// BuildProfileSharded preprocesses with `shards` row shards built
// concurrently and reduced through the mergeable-sketch operators in
// a deterministic tree order — the data-parallel fast path for large
// frames. Exact statistics match BuildProfile; sketch-derived scores
// agree within sketch error (benchmarked in EXPERIMENTS.md E13). 0 or
// 1 delegates to BuildProfile (bit-identical); negative selects
// GOMAXPROCS.
func BuildProfileSharded(f *Frame, cfg ProfileConfig, shards int) *Profile {
	return sketch.BuildProfileSharded(f, cfg, shards)
}

// LoadProfile reloads a sketch store saved with Profile.Save, so the
// preprocessing pass runs once per dataset rather than once per
// session.
func LoadProfile(r io.Reader) (*Profile, error) { return sketch.LoadProfile(r) }

// RenderSVGFromProfile draws an insight using only the preprocessed
// sketch store — no raw-data access.
func RenderSVGFromProfile(p *Profile, in Insight) (string, error) {
	return viz.RenderSVGFromProfile(p, in)
}

// ReportSection is one carousel of a static HTML report.
type ReportSection = viz.ReportSection

// ReportHTML assembles a self-contained HTML report from pre-rendered
// panels (the shareable, offline form of the demo UI).
func ReportHTML(title, subtitle string, sections []ReportSection) string {
	return viz.ReportHTML(title, subtitle, sections)
}

// NewEngine returns a query engine over f. profile may be nil (exact
// queries only); registry nil defaults to the built-ins.
func NewEngine(f *Frame, reg *Registry, profile *Profile) (*Engine, error) {
	return query.NewEngine(f, reg, profile)
}

// NewSession starts an exploration session with carousel length k.
func NewSession(e *Engine, k int, approx bool) *Session { return query.NewSession(e, k, approx) }

// LoadSession restores a session saved with Session.Save.
func LoadSession(r io.Reader, e *Engine) (*Session, error) { return query.LoadSession(r, e) }

// Similarity is the §2.1 insight-space distance used for
// neighborhoods.
func Similarity(a, b Insight) float64 { return query.Similarity(a, b) }

// RenderSVG draws an insight's preferred visualization as a
// self-contained SVG document.
func RenderSVG(f *Frame, in Insight) (string, error) { return viz.RenderSVG(f, in) }

// RenderASCII draws an insight as a text panel.
func RenderASCII(f *Frame, in Insight) (string, error) { return viz.RenderASCII(f, in) }

// CorrelogramSVG renders the Figure-2 overview heat map from an
// Overview of a symmetric pairwise class.
func CorrelogramSVG(ov *Overview, title string) string {
	return viz.CorrelogramSVG(ov.RowAttrs, ov.Values, title)
}

// Demo datasets (synthetic stand-ins for the paper's demo data; see
// DESIGN.md §2 for the substitution rationale).

// OECDDataset synthesizes the 35×25 OECD well-being table of §4.1
// (n ≤ 0 selects the paper's 35 rows).
func OECDDataset(n int, seed int64) *Frame { return datagen.OECD(n, seed) }

// ParkinsonDataset synthesizes the 2000×50 PPMI-style table of §4.2.
func ParkinsonDataset(n int, seed int64) *Frame { return datagen.Parkinson(n, seed) }

// IMDBDataset synthesizes the 5000×28 movie table of §4.2.
func IMDBDataset(n int, seed int64) *Frame { return datagen.IMDB(n, seed) }
