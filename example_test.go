package foresight_test

import (
	"fmt"
	"strings"

	"foresight"
)

// Example shows the minimal flow: load a CSV, ask for the strongest
// correlation insight, and inspect it.
func Example() {
	csv := "x,y,z\n1,2,9\n2,4,1\n3,6,5\n4,8,2\n5,10,7\n"
	f, err := foresight.ReadCSV(strings.NewReader(csv), "demo", nil)
	if err != nil {
		panic(err)
	}
	engine, err := foresight.NewEngine(f, nil, nil)
	if err != nil {
		panic(err)
	}
	res, err := engine.Execute(foresight.Query{Classes: []string{"linear"}, K: 1})
	if err != nil {
		panic(err)
	}
	top := res[0].Insights[0]
	fmt.Printf("%s %s rho=%.2f\n", top.Attrs[0], top.Attrs[1], top.Raw)
	// Output: x y rho=1.00
}

// ExampleQuery demonstrates the paper's §2.1 constrained insight
// query: fix one attribute and band-limit the strength metric.
func ExampleQuery() {
	csv := "a,b,c\n1,1.1,5\n2,1.9,1\n3,3.2,4\n4,3.8,2\n5,5.1,3\n6,6.2,0\n"
	f, _ := foresight.ReadCSV(strings.NewReader(csv), "demo", nil)
	engine, _ := foresight.NewEngine(f, nil, nil)
	res, _ := engine.Execute(foresight.Query{
		Classes:  []string{"linear"},
		Fixed:    []string{"a"},
		MinScore: 0.9,
		K:        5,
	})
	for _, r := range res {
		for _, in := range r.Insights {
			fmt.Println(strings.Join(in.Attrs, "~"))
		}
	}
	// Output: a~b
}

// ExampleSession shows focus-driven recommendation updates (§4.1).
func ExampleSession() {
	f := foresight.OECDDataset(0, 42)
	engine, _ := foresight.NewEngine(f, nil, nil)
	session := foresight.NewSession(engine, 3, false)
	// Focus the skewness insight of SelfReportedHealth.
	reg := engine.Registry()
	skew, _ := reg.Lookup("skew")
	in, _ := skew.Score(f, []string{"SelfReportedHealth"}, "")
	session.FocusOn(in)
	recs, _ := session.Recommendations()
	for _, r := range recs {
		if r.Class == "linear" {
			top := r.Insights[0]
			fmt.Println(strings.Join(top.Attrs, " ~ "))
		}
	}
	// Output: LifeSatisfaction ~ SelfReportedHealth
}

// ExampleRegistry_Register plugs a custom insight class into the
// registry (§2.2 extensibility).
func ExampleRegistry_Register() {
	reg := foresight.NewRegistry()
	err := reg.Register(foresight.NewNonlinearDependenceClass(0))
	fmt.Println(err == nil, len(reg.Names()))
	// Output: true 13
}
